(* Table 1/2/3 regeneration. *)

open Util

(* ------------------------------------------------------------- Table 1 *)

let table1 ~big () =
  hr "Table 1: benchmark suite characteristics";
  let suite = Benchmarks.Suite.suite ~big () in
  Printf.printf "%-12s %3s %9s %11s %11s %15s\n" "category" "#" "#Qubit" "#2Q" "Depth2Q"
    "Duration (1/g)";
  List.iter
    (fun (cat, (s : Benchmarks.Suite.stats)) ->
      Printf.printf "%-12s %3d %4d-%-4d %5d-%-5d %5d-%-5d %7.1f-%-7.1f\n" cat s.count
        s.qubit_lo s.qubit_hi s.twoq_lo s.twoq_hi s.depth_lo s.depth_hi s.dur_lo
        s.dur_hi)
    (Benchmarks.Suite.table1 suite);
  paper
    "132 programs over the same 17 categories; #2Q 9-29.3k (this repo runs a \
     scaled-down suite with the same structure per category)"

(* ------------------------------------------------------------- Table 2 *)

type t2row = {
  mutable n2q : float list;
  mutable depth : float list;
  mutable dur : float list;
}

let t2row () = { n2q = []; depth = []; dur = [] }

let add_row row ~base ~(opt : Compiler.Metrics.report) =
  let b : Compiler.Metrics.report = base in
  row.n2q <-
    Compiler.Metrics.reduction
      ~base:(float_of_int b.count_2q)
      ~opt:(float_of_int opt.count_2q)
    :: row.n2q;
  row.depth <-
    Compiler.Metrics.reduction
      ~base:(float_of_int b.depth_2q)
      ~opt:(float_of_int opt.depth_2q)
    :: row.depth;
  row.dur <- Compiler.Metrics.reduction ~base:b.duration ~opt:opt.duration :: row.dur

let compilers = [ "Qiskit"; "TKet"; "BQSKit"; "Eff"; "Full" ]

(* The per-bench compilation fan-out is independent across benches: each job
   gets its own pre-split rng (split sequentially, so the results do not
   depend on the domain count) and touches no shared state. Printing, CSV
   and the reduction statistics happen sequentially afterwards, in suite
   order. *)
type t2result = {
  bench : Benchmarks.Suite.bench;
  base : Compiler.Metrics.report;
  reports : (string * Compiler.Metrics.report) list;  (* per compiler *)
  csv_row : string list;
  eff_2q : int;
  full_2q : int;
  solver_outcomes : (string * string) list;  (* sampled 2Q gates: (gate, verdict) *)
}

(* Run the pulse solver on a handful of the compiled 2Q gates and record
   each verdict (ok/degraded/retried/failed) for the robustness report. *)
let sample_solver_outcomes (c : Circuit.t) =
  let gates = List.filter Gate.is_2q c.Circuit.gates in
  List.filteri (fun i _ -> i < 6) gates
  |> List.map (fun (g : Gate.t) ->
         let desc =
           Printf.sprintf "%s(%d,%d)" g.Gate.label g.Gate.qubits.(0) g.Gate.qubits.(1)
         in
         match Microarch.Genashn.solve_r xy g.Gate.mat with
         | Robust.Outcome.Solved _ -> (desc, "ok")
         | Robust.Outcome.Degraded (_, i) ->
           (desc, if i.Robust.Outcome.retries > 0 then "retried" else "degraded")
         | Robust.Outcome.Failed _ -> (desc, "failed"))

let table2_compute ((b : Benchmarks.Suite.bench), rng) =
  let input = Compiler.Pipeline.program_to_cnot_input b.program in
  let base = Compiler.Metrics.report cnot_isa input in
  let qiskit = Compiler.Baselines.qiskit_like input in
  let tket =
    match b.program with
    | Compiler.Pipeline.Pauli p -> Compiler.Baselines.tket_like_pauli p
    | Compiler.Pipeline.Gates _ -> Compiler.Baselines.tket_like input
  in
  let bq =
    Compiler.Baselines.bqskit_like (Numerics.Rng.split rng)
      ~target:Compiler.Baselines.To_cnot input
  in
  let eff = Compiler.Pipeline.compile ~mode:Compiler.Pipeline.Eff rng b.program in
  let full = Compiler.Pipeline.compile ~mode:Compiler.Pipeline.Full rng b.program in
  let eff_report = Compiler.Metrics.report su4_isa eff.Compiler.Pipeline.circuit in
  let full_report = Compiler.Metrics.report su4_isa full.Compiler.Pipeline.circuit in
  let csv_row =
    [
      b.name; b.category;
      string_of_int base.Compiler.Metrics.count_2q;
      string_of_int (Circuit.count_2q qiskit);
      string_of_int (Circuit.count_2q tket);
      string_of_int (Circuit.count_2q bq);
      string_of_int (Circuit.count_2q eff.Compiler.Pipeline.circuit);
      string_of_int (Circuit.count_2q full.Compiler.Pipeline.circuit);
      Printf.sprintf "%.4f" base.Compiler.Metrics.duration;
      Printf.sprintf "%.4f" eff_report.Compiler.Metrics.duration;
      Printf.sprintf "%.4f" full_report.Compiler.Metrics.duration;
    ]
  in
  {
    bench = b;
    base;
    reports =
      [
        ("Qiskit", Compiler.Metrics.report cnot_isa qiskit);
        ("TKet", Compiler.Metrics.report cnot_isa tket);
        ("BQSKit", Compiler.Metrics.report cnot_isa bq);
        ("Eff", eff_report);
        ("Full", full_report);
      ];
    csv_row;
    eff_2q = Circuit.count_2q eff.Compiler.Pipeline.circuit;
    full_2q = Circuit.count_2q full.Compiler.Pipeline.circuit;
    solver_outcomes = sample_solver_outcomes eff.Compiler.Pipeline.circuit;
  }

(* One broken bench must not abort the whole sweep: failures come back as
   [Error] rows, reported and counted after the parallel fan-out. *)
let table2_compute_safe job =
  match table2_compute job with
  | r -> Ok r
  | exception e -> Error (Printexc.to_string e)

let table2 ?limit ~big () =
  hr "Table 2: logical-level compilation (reduction % vs CNOT-based input)";
  let suite = Benchmarks.Suite.suite ~big () in
  let suite =
    match limit with
    | Some k -> List.filteri (fun i _ -> i < k) suite
    | None -> suite
  in
  let rng = Numerics.Rng.create 20260704L in
  let per_cat = Hashtbl.create 17 in
  let overall = List.map (fun c -> (c, t2row ())) compilers in
  let csv_rows = ref [] in
  let all_rows cat =
    match Hashtbl.find_opt per_cat cat with
    | Some r -> r
    | None ->
      let r = List.map (fun c -> (c, t2row ())) compilers in
      Hashtbl.add per_cat cat r;
      r
  in
  let jobs = List.map (fun b -> (b, Numerics.Rng.split rng)) suite in
  let results = Numerics.Par.parallel_map table2_compute_safe jobs in
  List.iter2
    (fun ((b : Benchmarks.Suite.bench), _) result ->
      match result with
      | Ok r ->
        let record name report =
          add_row (List.assoc name (all_rows r.bench.Benchmarks.Suite.category)) ~base:r.base
            ~opt:report;
          add_row (List.assoc name overall) ~base:r.base ~opt:report
        in
        List.iter (fun (name, report) -> record name report) r.reports;
        csv_rows := r.csv_row :: !csv_rows;
        Util.note_gate_outcomes r.bench.Benchmarks.Suite.name r.solver_outcomes;
        Robust.Counters.incr ~stage:"bench.table2" "bench_ok";
        Printf.printf "  %-14s done (#2Q %d -> eff %d, full %d)\n%!"
          r.bench.Benchmarks.Suite.name r.base.Compiler.Metrics.count_2q r.eff_2q r.full_2q
      | Error msg ->
        Robust.Counters.incr ~stage:"bench.table2" "bench_failed";
        Printf.printf "  %-14s FAILED (%s) — excluded from statistics\n%!"
          b.Benchmarks.Suite.name msg)
    jobs results;
  csv "table2"
    [ "bench"; "category"; "input_2q"; "qiskit_2q"; "tket_2q"; "bqskit_2q";
      "eff_2q"; "full_2q"; "input_T"; "eff_T"; "full_T" ]
    (List.rev !csv_rows);
  let print_block title get =
    sub title;
    Printf.printf "%-12s %8s %8s %8s %8s %8s\n" "category" "Qiskit" "TKet" "BQSKit" "Eff"
      "Full";
    List.iter
      (fun cat ->
        match Hashtbl.find_opt per_cat cat with
        | None -> ()
        | Some rows ->
          Printf.printf "%-12s" cat;
          List.iter (fun c -> Printf.printf " %8.2f" (mean (get (List.assoc c rows)))) compilers;
          print_newline ())
      Benchmarks.Suite.categories;
    Printf.printf "%-12s" "Overall";
    List.iter (fun c -> Printf.printf " %8.2f" (mean (get (List.assoc c overall)))) compilers;
    print_newline ()
  in
  print_block "average #2Q reduction (%)" (fun r -> r.n2q);
  paper "overall #2Q: Qiskit 5.34, TKet 15.91, BQSKit 7.99, Eff 46.95, Full 51.89";
  print_block "average Depth2Q reduction (%)" (fun r -> r.depth);
  paper "overall Depth2Q: Qiskit 5.2, TKet 21.83, BQSKit 7.34, Eff 53.43, Full 57.5";
  print_block "average duration reduction (%)" (fun r -> r.dur);
  paper "overall duration: Qiskit 5.2, TKet 21.83, BQSKit 7.34, Eff 68.03, Full 71.0"

(* ------------------------------------------------------------- Table 3 *)

let table3 ~haar_n () =
  hr "Table 3: synthesis cost in gate duration (units of 1/g)";
  let open Microarch in
  let bases = Duration.[ Cnot; Iswap; Sqisw; B ] in
  let couplings =
    [ ("XY", Coupling.xy ~g:1.0); ("XX", Coupling.xx ~g:1.0) ]
  in
  Printf.printf "conventional CNOT scheme (XY): single %.3f, Haar-average %.3f\n"
    (Duration.conventional_cnot_tau ~g:1.0)
    (3.0 *. Duration.conventional_cnot_tau ~g:1.0);
  paper "CNOT conventional: 2.221 / 6.664";
  Printf.printf "\n%-10s %12s %12s %12s\n" "basis" "XY" "XX" "Random";
  (* native SU(4); Haar sweeps are domain-parallel with per-index rngs, so
     seed bases are spaced by 1e6 to keep the sample streams disjoint *)
  let native_avg coupling seed =
    Duration.haar_average_par ~n:haar_n ~seed:(Int64.mul 1_000_000L seed) (fun c ->
        Duration.tau_su4 coupling c)
  in
  let n_couplings = 32 in
  let random_couplings =
    let r = Numerics.Rng.create 99L in
    List.init n_couplings (fun _ -> Coupling.random r)
  in
  let native_random =
    mean (List.mapi (fun i h -> native_avg h (Int64.of_int (1000 + i))) random_couplings)
  in
  Printf.printf "%-10s %12.3f %12.3f %12.3f   (Haar-average, native)\n" "SU(4)"
    (native_avg (Coupling.xy ~g:1.0) 1L)
    (native_avg (Coupling.xx ~g:1.0) 2L)
    native_random;
  paper "SU(4): XY 1.341, XX 1.178, Random 1.321";
  (* fixed bases: single-gate and Haar-average synthesis durations *)
  let avg_count b seed =
    Duration.haar_average_par ~n:haar_n ~seed:(Int64.mul 1_000_000L seed) (fun c ->
        float_of_int (Duration.gates_needed b c))
  in
  List.iteri
    (fun bi b ->
      let single coupling = Duration.basis_gate_tau coupling b in
      let rand_single = mean (List.map single random_couplings) in
      let cnt = avg_count b (Int64.of_int (77 + bi)) in
      Printf.printf "%-10s %5.3f/%-6.3f %5.3f/%-6.3f %5.3f/%-6.3f   (single/avg, %.3f gates per Haar target)\n"
        (Duration.basis_to_string b)
        (single (List.assoc "XY" couplings))
        (cnt *. single (List.assoc "XY" couplings))
        (single (List.assoc "XX" couplings))
        (cnt *. single (List.assoc "XX" couplings))
        rand_single (cnt *. rand_single) cnt)
    bases;
  paper "CNOT 1.571/4.712 | 0.785/2.356 | ~1.228/3.684";
  paper "iSWAP 1.571/4.712 | 1.571/4.712 | ~1.898/5.693";
  paper "SQiSW 0.785/1.736 | 0.785/1.736 | ~0.949/2.097";
  paper "B 1.571/(3.14 expected; table prints 4.712) | 1.178/2.356 | ~1.435/2.869"
