(* Content-addressed pulse cache: fingerprint stability, LRU bounds, the
   crash-safe on-disk store, the tiered cache, and the end-to-end solver
   round trip (a warm hit replays the cold pulse bit-for-bit and still
   reproduces the target unitary). *)

open Numerics

let xy = Microarch.Coupling.xy ~g:1.0

let tmp_path suffix =
  let p = Filename.temp_file "reqisc_test" suffix in
  Sys.remove p;
  p

let cleanup path = if Sys.file_exists path then Sys.remove path

(* ---------------------------------------------------------- fingerprint *)

let test_fp_quantization () =
  let key vs = Cache.Fingerprint.(key (floats (create "t.v1") vs)) in
  Alcotest.(check string) "sub-quantum noise collapses" (key [| 0.5; 0.25 |])
    (key [| 0.5 +. 1e-13; 0.25 -. 1e-13 |]);
  Alcotest.(check bool) "distinct values stay distinct" true
    (key [| 0.5; 0.25 |] <> key [| 0.5 +. 1e-6; 0.25 |]);
  let weird = key [| Float.nan; Float.infinity; Float.neg_infinity |] in
  Alcotest.(check bool) "non-finite encodes without raising" true
    (String.length weird > 0);
  Alcotest.(check bool) "nan and inf differ" true
    (key [| Float.nan |] <> key [| Float.infinity |])

let test_fp_self_delimiting () =
  let open Cache.Fingerprint in
  Alcotest.(check bool) "string splits do not collide" true
    (key (str (str (create "t") "ab") "c") <> key (str (str (create "t") "a") "bc"));
  Alcotest.(check bool) "tag is part of the key" true
    (key (create "a.v1") <> key (create "a.v2"));
  Alcotest.(check bool) "int vs float field differ" true
    (key (int (create "t") 1) <> key (float (create "t") 1.0))

let test_fp_unitary_phase_invariant () =
  let u = Quantum.Gates.cnot in
  let phase = Cx.expi 0.7 in
  let v = Mat.init (Mat.rows u) (Mat.cols u) (fun r c -> Cx.( *: ) phase (Mat.get u r c)) in
  let fp m = Cache.Fingerprint.(key (unitary (create "t") m)) in
  Alcotest.(check string) "global phase drops out" (fp u) (fp v);
  Alcotest.(check bool) "different gates differ" true
    (fp Quantum.Gates.cnot <> fp Quantum.Gates.iswap)

(* ------------------------------------------------------------------ lru *)

let test_lru_bounds () =
  let l = Cache.Lru.create ~capacity:3 in
  Alcotest.(check (option (pair string int))) "no eviction below cap" None
    (Cache.Lru.add l "a" 1);
  ignore (Cache.Lru.add l "b" 2);
  ignore (Cache.Lru.add l "c" 3);
  (* touch "a" so "b" is now the LRU entry *)
  Alcotest.(check (option int)) "find promotes" (Some 1) (Cache.Lru.find l "a");
  (match Cache.Lru.add l "d" 4 with
  | Some ("b", 2) -> ()
  | Some (k, _) -> Alcotest.failf "evicted %S, expected \"b\"" k
  | None -> Alcotest.fail "expected an eviction at capacity");
  Alcotest.(check int) "length stays bounded" 3 (Cache.Lru.length l);
  Alcotest.(check (list string)) "recency order" [ "d"; "a"; "c" ] (Cache.Lru.keys l);
  Alcotest.(check (option int)) "evicted key gone" None (Cache.Lru.find l "b")

(* ---------------------------------------------------------------- store *)

let append_records path records =
  match Cache.Store.open_writer path ~valid_bytes:0 with
  | Error e -> Alcotest.failf "open_writer: %s" e
  | Ok w ->
    List.iter (fun (key, value) -> Cache.Store.append w { Cache.Store.key; value }) records;
    let n = Cache.Store.written_bytes w in
    Cache.Store.close_writer w;
    n

let test_store_roundtrip () =
  let path = tmp_path ".rqcache" in
  let records = [ ("k1", "v1"); ("k2", String.make 1000 'x'); ("k1", "v1'") ] in
  let written = append_records path records in
  (match Cache.Store.load path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok r ->
    Alcotest.(check int) "all records back" 3 (List.length r.Cache.Store.records);
    Alcotest.(check int) "valid prefix is whole file" written r.Cache.Store.valid_bytes;
    Alcotest.(check int) "no torn bytes" 0 r.Cache.Store.torn_bytes;
    Alcotest.(check (list (pair string string))) "append order, dups kept"
      records
      (List.map (fun (x : Cache.Store.record) -> (x.key, x.value)) r.Cache.Store.records));
  cleanup path

let test_store_torn_tail () =
  let path = tmp_path ".rqcache" in
  let written = append_records path [ ("k1", "v1"); ("k2", "v2") ] in
  (* simulate a crash mid-append: garbage half-frame at the tail *)
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\x40\x00\x00\x00torn";
  close_out oc;
  (match Cache.Store.load path with
  | Error e -> Alcotest.failf "load after tear: %s" e
  | Ok r ->
    Alcotest.(check int) "intact prefix survives" 2 (List.length r.Cache.Store.records);
    Alcotest.(check int) "valid bytes stop at tear" written r.Cache.Store.valid_bytes;
    Alcotest.(check int) "tear measured" 8 r.Cache.Store.torn_bytes;
    (* reopening for append drops the tear exactly once *)
    (match Cache.Store.open_writer path ~valid_bytes:r.Cache.Store.valid_bytes with
    | Error e -> Alcotest.failf "open_writer after tear: %s" e
    | Ok w ->
      Cache.Store.append w { Cache.Store.key = "k3"; value = "v3" };
      Cache.Store.close_writer w);
    match Cache.Store.load path with
    | Error e -> Alcotest.failf "reload: %s" e
    | Ok r ->
      Alcotest.(check int) "tear gone, append landed" 3 (List.length r.Cache.Store.records);
      Alcotest.(check int) "file clean again" 0 r.Cache.Store.torn_bytes);
  cleanup path

let test_store_corrupt_checksum () =
  let path = tmp_path ".rqcache" in
  ignore (append_records path [ ("k1", "v1"); ("k2", "v2") ]);
  (* flip one byte inside the second record's payload *)
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = Bytes.create len in
  really_input ic bytes 0 len;
  close_in ic;
  Bytes.set bytes (len - 1) (Char.chr (Char.code (Bytes.get bytes (len - 1)) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  (match Cache.Store.load path with
  | Error e -> Alcotest.failf "load after corruption: %s" e
  | Ok r ->
    Alcotest.(check int) "prefix before bad checksum kept" 1
      (List.length r.Cache.Store.records);
    Alcotest.(check bool) "corruption counted as torn" true (r.Cache.Store.torn_bytes > 0));
  (match Cache.Store.load "/dev/null" with
  | Ok r -> Alcotest.(check int) "empty file loads empty" 0 (List.length r.Cache.Store.records)
  | Error e -> Alcotest.failf "empty file: %s" e);
  cleanup path

let test_store_corrupt_midfile () =
  let path = tmp_path ".rqcache" in
  ignore (append_records path [ ("k1", "v1"); ("k2", "v2"); ("k3", "v3") ]);
  (* flip a byte inside the FIRST record's payload: framing stays intact
     and valid records follow, so only that record may be dropped — bit
     rot mid-file must not discard the valid tail behind it *)
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let bytes = Bytes.create len in
  really_input ic bytes 0 len;
  close_in ic;
  (* 8B magic + 8B frame header + 4B key_len puts offset 21 in "k1" *)
  Bytes.set bytes 21 (Char.chr (Char.code (Bytes.get bytes 21) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc bytes;
  close_out oc;
  (match Cache.Store.load path with
  | Error e -> Alcotest.failf "load after mid-file corruption: %s" e
  | Ok r ->
    Alcotest.(check (list (pair string string))) "records behind the rot survive"
      [ ("k2", "v2"); ("k3", "v3") ]
      (List.map (fun (x : Cache.Store.record) -> (x.key, x.value)) r.Cache.Store.records);
    Alcotest.(check int) "skip counted" 1 r.Cache.Store.corrupt_records;
    Alcotest.(check int) "not treated as torn" 0 r.Cache.Store.torn_bytes;
    Alcotest.(check int) "whole file scanned" len r.Cache.Store.valid_bytes);
  cleanup path

let test_store_short_write_fault () =
  Robust.Fault.configure None;
  let path = tmp_path ".rqcache" in
  let clean = append_records path [ ("k1", "v1"); ("k2", "v2") ] in
  (match Cache.Store.open_writer path ~valid_bytes:clean with
  | Error e -> Alcotest.failf "open_writer: %s" e
  | Ok w ->
    (* the injected crash: the next append writes half a frame and wedges
       the writer — as if the process died mid-write *)
    Robust.Fault.configure (Some "store_short_write:1");
    Cache.Store.append w { Cache.Store.key = "k3"; value = String.make 64 'z' };
    Alcotest.(check bool) "writer wedged" true (Cache.Store.wedged w);
    (* a dead process writes nothing more *)
    Cache.Store.append w { Cache.Store.key = "k4"; value = "v4" };
    Cache.Store.close_writer w;
    Robust.Fault.configure None);
  (match Cache.Store.load path with
  | Error e -> Alcotest.failf "load after kill: %s" e
  | Ok r ->
    Alcotest.(check (list (pair string string))) "pre-kill records bit-identical"
      [ ("k1", "v1"); ("k2", "v2") ]
      (List.map (fun (x : Cache.Store.record) -> (x.key, x.value)) r.Cache.Store.records);
    Alcotest.(check int) "half-frame is a torn tail" clean r.Cache.Store.valid_bytes;
    Alcotest.(check bool) "tear measured" true (r.Cache.Store.torn_bytes > 0));
  cleanup path

let test_store_sync_policies () =
  Alcotest.(check bool) "default is periodic fsync" true
    (match Cache.Store.default_sync with Cache.Store.Interval s -> s > 0.0 | _ -> false);
  List.iter
    (fun sync ->
      let path = tmp_path ".rqcache" in
      (match Cache.Store.open_writer ~sync path ~valid_bytes:0 with
      | Error e -> Alcotest.failf "open_writer: %s" e
      | Ok w ->
        Cache.Store.append w { Cache.Store.key = "k"; value = "v" };
        Cache.Store.sync_now w;
        Alcotest.(check bool) "not wedged" false (Cache.Store.wedged w);
        Cache.Store.close_writer w);
      (match Cache.Store.load path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok r ->
        Alcotest.(check int) "record durable under every policy" 1
          (List.length r.Cache.Store.records));
      cleanup path)
    [ Cache.Store.Never; Cache.Store.Interval 0.01; Cache.Store.Always ]

let test_store_bad_magic () =
  let path = tmp_path ".rqcache" in
  let oc = open_out_bin path in
  output_string oc "definitely not a cache store";
  close_out oc;
  (match Cache.Store.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected Error for a non-store file");
  cleanup path

(* --------------------------------------------------------------- tiered *)

let test_tiered_eviction_disk_fallback () =
  let path = tmp_path ".rqcache" in
  (match Cache.create ~capacity:2 ~path () with
  | Error e -> Alcotest.failf "create: %s" e
  | Ok c ->
    Cache.add c "a" "1";
    Cache.add c "b" "2";
    Cache.add c "c" "3";
    (* "a" was evicted from the LRU tier but must still hit via disk *)
    Alcotest.(check (option string)) "disk fallback" (Some "1") (Cache.find c "a");
    Alcotest.(check (option string)) "miss is a miss" None (Cache.find c "zzz");
    let s = Cache.stats c in
    Alcotest.(check int) "lru bounded" 2 s.Cache.size;
    Alcotest.(check int) "all keys on disk" 3 s.Cache.disk_records;
    Alcotest.(check bool) "eviction counted" true (s.Cache.evictions >= 1);
    Alcotest.(check bool) "disk hit counted" true (s.Cache.disk_hits >= 1);
    Cache.close c);
  (* reload from disk: everything persisted *)
  (match Cache.create ~capacity:2 ~path () with
  | Error e -> Alcotest.failf "reopen: %s" e
  | Ok c ->
    List.iter
      (fun (k, v) ->
        Alcotest.(check (option string)) ("reloaded " ^ k) (Some v) (Cache.find c k))
      [ ("a", "1"); ("b", "2"); ("c", "3") ];
    Cache.close c);
  cleanup path

let test_tiered_compaction () =
  let path = tmp_path ".rqcache" in
  (match Cache.create ~capacity:8 ~path () with
  | Error e -> Alcotest.failf "create: %s" e
  | Ok c ->
    (* three updates of "a" -> three physical frames for one key *)
    Cache.add c "a" "1";
    Cache.add c "a" "2";
    Cache.add c "a" "3";
    Cache.add c "b" "long-lived";
    let s = Cache.stats c in
    Alcotest.(check int) "distinct keys" 2 s.Cache.disk_records;
    Alcotest.(check int) "duplicates on disk" 4 s.Cache.file_records;
    let before_bytes = s.Cache.disk_bytes in
    (match Cache.compact c with
    | Error e -> Alcotest.failf "compact: %s" e
    | Ok bytes ->
      Alcotest.(check bool) "file shrank" true (bytes < before_bytes);
      let s = Cache.stats c in
      Alcotest.(check int) "one frame per key" 2 s.Cache.file_records;
      Alcotest.(check int) "keys kept" 2 s.Cache.disk_records;
      Alcotest.(check int) "size reported" bytes s.Cache.disk_bytes;
      Alcotest.(check int) "compaction counted" 1 s.Cache.compactions);
    (* latest value wins, cache stays usable, appends still land *)
    Alcotest.(check (option string)) "latest value" (Some "3") (Cache.find c "a");
    Cache.add c "c" "post-compact";
    Cache.close c);
  (* a fresh process sees the compacted file + the post-compact append *)
  (match Cache.create ~capacity:8 ~path () with
  | Error e -> Alcotest.failf "reopen: %s" e
  | Ok c ->
    List.iter
      (fun (k, v) ->
        Alcotest.(check (option string)) ("reloaded " ^ k) (Some v) (Cache.find c k))
      [ ("a", "3"); ("b", "long-lived"); ("c", "post-compact") ];
    Alcotest.(check int) "no tear from the rewrite" 0 (Cache.stats c).Cache.torn_bytes;
    Cache.close c);
  cleanup path

let test_tiered_memory_only () =
  match Cache.create ~capacity:2 () with
  | Error e -> Alcotest.failf "create: %s" e
  | Ok c ->
    Cache.add c "a" "1";
    Cache.add c "b" "2";
    Cache.add c "c" "3";
    Alcotest.(check (option string)) "evicted for good without disk" None
      (Cache.find c "a");
    Alcotest.(check (option string)) "recent key lives" (Some "3") (Cache.find c "c");
    Cache.close c

(* ------------------------------------------------------- pulse entries *)

let test_pulse_entry_codec () =
  let e =
    {
      Microarch.Pulse_cache.solved = false;
      scheme = 2;
      tau = 1.234567890123456;
      x1 = -0.5;
      x2 = 0.25;
      delta = Float.pi;
      residual = 3.2e-5;
      retries = 7;
      note = "ea retry g*1.01";
    }
  in
  (match Microarch.Pulse_cache.decode (Microarch.Pulse_cache.encode e) with
  | None -> Alcotest.fail "decode of fresh encode failed"
  | Some d ->
    Alcotest.(check bool) "bit-exact round trip" true
      (d.Microarch.Pulse_cache.solved = e.Microarch.Pulse_cache.solved
      && d.Microarch.Pulse_cache.scheme = e.Microarch.Pulse_cache.scheme
      && Int64.bits_of_float d.Microarch.Pulse_cache.tau
         = Int64.bits_of_float e.Microarch.Pulse_cache.tau
      && Int64.bits_of_float d.Microarch.Pulse_cache.delta
         = Int64.bits_of_float e.Microarch.Pulse_cache.delta
      && d.Microarch.Pulse_cache.retries = e.Microarch.Pulse_cache.retries
      && d.Microarch.Pulse_cache.note = e.Microarch.Pulse_cache.note));
  Alcotest.(check bool) "truncated bytes decode to None" true
    (Microarch.Pulse_cache.decode
       (String.sub (Microarch.Pulse_cache.encode e) 0 10)
    = None);
  Alcotest.(check bool) "garbage decodes to None" true
    (Microarch.Pulse_cache.decode "garbage" = None)

(* ------------------------------------------------- solver round trip *)

let pulse_bits (p : Microarch.Genashn.pulse) =
  List.map Int64.bits_of_float
    [
      p.Microarch.Genashn.tau; p.Microarch.Genashn.drive_x1;
      p.Microarch.Genashn.drive_x2; p.Microarch.Genashn.delta;
    ]

let solve_gate gate =
  match Microarch.Genashn.solve_r xy gate with
  | Robust.Outcome.Solved r -> r
  | Robust.Outcome.Degraded (r, _) -> r
  | Robust.Outcome.Failed e -> Alcotest.failf "solve failed: %s" (Robust.Err.to_string e)

let test_solver_round_trip () =
  Robust.Fault.configure None;
  let path = tmp_path ".rqcache" in
  let gates = [ Quantum.Gates.cnot; Quantum.Gates.iswap; Quantum.Gates.b_gate ] in
  (* cold: populate the cache *)
  let cold =
    match Cache.create ~path () with
    | Error e -> Alcotest.failf "create: %s" e
    | Ok c ->
      Microarch.Pulse_cache.with_cache c (fun () ->
          let rs = List.map solve_gate gates in
          Cache.close c;
          rs)
  in
  (* warm: a fresh process would reload from disk; model that with a new
     cache instance over the same file *)
  (match Cache.create ~path () with
  | Error e -> Alcotest.failf "reopen: %s" e
  | Ok c ->
    Microarch.Pulse_cache.with_cache c (fun () ->
        let runs0 = Robust.Counters.get ~stage:"genashn" "solve_run" in
        let hits0 = Robust.Counters.get ~stage:"genashn" "cache_hit" in
        List.iter2
          (fun gate cold_r ->
            let warm_r = solve_gate gate in
            Alcotest.(check (list int64)) "warm pulse bit-identical to cold"
              (pulse_bits cold_r.Microarch.Genashn.pulse)
              (pulse_bits warm_r.Microarch.Genashn.pulse);
            (* the replayed pulse must still realize the target unitary *)
            let dist =
              Mat.frobenius_dist (Microarch.Genashn.reconstruct warm_r) gate
            in
            Alcotest.(check bool) "cached pulse reproduces target" true
              (dist < 1e-6))
          gates cold;
        Alcotest.(check int) "no solver runs on warm pass" runs0
          (Robust.Counters.get ~stage:"genashn" "solve_run");
        Alcotest.(check bool) "every warm solve was a hit" true
          (Robust.Counters.get ~stage:"genashn" "cache_hit" >= hits0 + 3));
    Cache.close c);
  (* uninstalled again: behaviour reverts to plain solving *)
  Alcotest.(check bool) "no cache left installed" true
    (Microarch.Pulse_cache.installed () = None);
  cleanup path

let test_cache_survives_corrupt_tail () =
  Robust.Fault.configure None;
  let path = tmp_path ".rqcache" in
  (match Cache.create ~path () with
  | Error e -> Alcotest.failf "create: %s" e
  | Ok c ->
    Microarch.Pulse_cache.with_cache c (fun () ->
        ignore (solve_gate Quantum.Gates.cnot));
    Cache.close c);
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  output_string oc "\xff\xff\xff\xfftorn tail";
  close_out oc;
  (match Cache.create ~path () with
  | Error e -> Alcotest.failf "reopen torn: %s" e
  | Ok c ->
    Microarch.Pulse_cache.with_cache c (fun () ->
        let hits0 = Robust.Counters.get ~stage:"genashn" "cache_hit" in
        ignore (solve_gate Quantum.Gates.cnot);
        Alcotest.(check bool) "intact record still hits after tear" true
          (Robust.Counters.get ~stage:"genashn" "cache_hit" > hits0));
    let s = Cache.stats c in
    Alcotest.(check bool) "tear accounted" true (s.Cache.torn_bytes > 0);
    Cache.close c);
  cleanup path

let () =
  Alcotest.run "cache"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "quantization" `Quick test_fp_quantization;
          Alcotest.test_case "self-delimiting" `Quick test_fp_self_delimiting;
          Alcotest.test_case "unitary phase invariance" `Quick
            test_fp_unitary_phase_invariant;
        ] );
      ( "lru",
        [ Alcotest.test_case "bounds and recency" `Quick test_lru_bounds ] );
      ( "store",
        [
          Alcotest.test_case "round trip" `Quick test_store_roundtrip;
          Alcotest.test_case "torn tail" `Quick test_store_torn_tail;
          Alcotest.test_case "corrupt checksum" `Quick test_store_corrupt_checksum;
          Alcotest.test_case "corrupt mid-file skip" `Quick test_store_corrupt_midfile;
          Alcotest.test_case "short-write kill" `Quick test_store_short_write_fault;
          Alcotest.test_case "sync policies" `Quick test_store_sync_policies;
          Alcotest.test_case "bad magic" `Quick test_store_bad_magic;
        ] );
      ( "tiered",
        [
          Alcotest.test_case "eviction + disk fallback" `Quick
            test_tiered_eviction_disk_fallback;
          Alcotest.test_case "compaction" `Quick test_tiered_compaction;
          Alcotest.test_case "memory-only" `Quick test_tiered_memory_only;
        ] );
      ( "pulse",
        [
          Alcotest.test_case "entry codec" `Quick test_pulse_entry_codec;
          Alcotest.test_case "solver round trip" `Quick test_solver_round_trip;
          Alcotest.test_case "corrupt tail recovery" `Quick
            test_cache_survives_corrupt_tail;
        ] );
    ]
