(* Cross-cutting integration and invariant tests: microarchitecture
   consistency laws, end-to-end equivalences with random programs,
   determinism, and edge cases that individual module suites don't cover. *)

open Numerics

let rng = Rng.create 404L

let check_phase ?(tol = 1e-6) msg expected actual =
  Alcotest.(check bool)
    (msg ^ " (phase dist " ^ string_of_float (Mat.phase_dist expected actual) ^ ")")
    true
    (Mat.allclose_up_to_phase ~tol expected actual)

let arrange_matrix n (m : int array) =
  let dim = 1 lsl n in
  Mat.init dim dim (fun y x ->
      let ok = ref true in
      for l = 0 to n - 1 do
        if (y lsr (n - 1 - m.(l))) land 1 <> (x lsr (n - 1 - l)) land 1 then ok := false
      done;
      if !ok then Cx.one else Cx.zero)

(* -------------------------------------------------- microarch invariants *)

let test_free_evolution_is_optimal () =
  (* evolving under H[a,b,c] alone for time t reaches exactly the class
     (at, bt, ct), and Theorem 1 must assign it hit time exactly t -- this
     pins the coordinate convention of the frontier formulas. *)
  List.iter
    (fun (a, b, c) ->
      let h = Microarch.Coupling.make a b c in
      List.iter
        (fun t ->
          let u = Expm.herm_expi (Microarch.Coupling.matrix h) ~t in
          let coords = Weyl.Kak.coords_of u in
          let tau = Microarch.Tau.tau_opt h coords in
          Alcotest.(check bool)
            (Printf.sprintf "free evolution H[%g,%g,%g] t=%g: tau=%g" a b c t tau)
            true
            (Float.abs (tau -. t) < 1e-9))
        [ 0.2; 0.5; 0.75 ])
    [ (1.0, 0.5, 0.25); (1.0, 0.5, -0.25); (0.5, 0.5, 0.0); (1.0, 0.9, 0.8) ]

let test_tau_below_conventional_everywhere () =
  (* the native realization never loses to 3x the conventional CNOT pulse *)
  let h = Microarch.Coupling.xy ~g:1.0 in
  let bound = 3.0 *. Microarch.Duration.conventional_cnot_tau ~g:1.0 in
  for _ = 1 to 50 do
    let c = Weyl.Kak.coords_of (Quantum.Haar.su4 rng) in
    Alcotest.(check bool) "tau below CNOT synthesis" true
      (Microarch.Tau.tau_opt h c < bound)
  done

let test_ea_roots_ladder () =
  (* Fig 4: SWAP under XX has a ladder of roots; penalties increase and the
     solver picks the smallest *)
  let xxc = Microarch.Coupling.xx ~g:1.0 in
  let roots = Microarch.Genashn.ea_roots xxc Weyl.Coords.swap in
  Alcotest.(check bool)
    (Printf.sprintf "found %d roots" (List.length roots))
    true
    (List.length roots >= 3);
  (match Microarch.Genashn.solve_coords xxc Weyl.Coords.swap with
  | Error e -> Alcotest.fail e
  | Ok p ->
    let min_pen =
      List.fold_left
        (fun acc (o, d) -> Float.min acc ((2.0 *. o) +. d))
        infinity roots
    in
    let pen = (2.0 *. Float.abs p.Microarch.Genashn.drive_x1) +. Float.abs p.Microarch.Genashn.delta in
    Alcotest.(check bool)
      (Printf.sprintf "selected penalty %.4f = min %.4f" pen min_pen)
      true
      (pen <= min_pen +. 1e-6));
  (* each root actually solves the problem *)
  List.iteri
    (fun i (om, de) ->
      if i < 3 then begin
        let p =
          {
            Microarch.Genashn.tau = Microarch.Tau.tau_opt xxc Weyl.Coords.swap;
            subscheme = Microarch.Tau.EA_same;
            drive_x1 = om;
            drive_x2 = om;
            delta = de;
          }
        in
        let got = Weyl.Kak.coords_of (Microarch.Genashn.evolve xxc p) in
        Alcotest.(check bool)
          (Printf.sprintf "root %d realizes SWAP (dist %.2g)" i
             (Weyl.Coords.dist got Weyl.Coords.swap))
          true
          (Weyl.Coords.dist got Weyl.Coords.swap < 1e-6)
      end)
    roots

let test_pulse_corrections_unitary () =
  let h = Microarch.Coupling.make 0.8 0.5 0.2 in
  for _ = 1 to 5 do
    let u = Quantum.Haar.su4 rng in
    if Weyl.Coords.norm1 (Weyl.Kak.coords_of u) > 0.25 then begin
      match Microarch.Genashn.solve h u with
      | Error e -> Alcotest.fail e
      | Ok r ->
        List.iter
          (fun (n, m) ->
            Alcotest.(check bool) (n ^ " unitary") true (Mat.is_unitary ~tol:1e-7 m))
          [
            ("a1", r.Microarch.Genashn.a1); ("a2", r.Microarch.Genashn.a2);
            ("b1", r.Microarch.Genashn.b1); ("b2", r.Microarch.Genashn.b2);
          ]
    end
  done

(* -------------------------------------------------- end-to-end pipelines *)

let random_ccx_program r n gates =
  Circuit.create n
    (List.init gates (fun _ ->
         let distinct k banned =
           let rec draw () =
             let v = Rng.int r k in
             if List.mem v banned then draw () else v
           in
           draw ()
         in
         match Rng.int r 4 with
         | 0 ->
           let a = Rng.int r n in
           let b = distinct n [ a ] in
           Gate.cx a b
         | 1 -> Gate.x (Rng.int r n)
         | 2 -> Gate.h (Rng.int r n)
         | _ ->
           let a = Rng.int r n in
           let b = distinct n [ a ] in
           let c = distinct n [ a; b ] in
           Gate.ccx a b c))

let test_pipeline_random_programs () =
  (* fuzz: Eff pipeline preserves semantics on random CCX programs *)
  for k = 1 to 4 do
    let r = Rng.create (Int64.of_int (1000 + k)) in
    let c = random_ccx_program r 4 10 in
    let out = Compiler.Pipeline.compile ~mode:Compiler.Pipeline.Eff r (Compiler.Pipeline.Gates c) in
    let fix = arrange_matrix 4 out.Compiler.Pipeline.final_mapping in
    check_phase ~tol:1e-3
      (Printf.sprintf "random program %d" k)
      (Circuit.unitary c)
      (Mat.mul (Mat.dagger fix) (Circuit.unitary out.Compiler.Pipeline.circuit))
  done

let test_pipeline_deterministic () =
  let c = random_ccx_program (Rng.create 55L) 4 8 in
  let run () =
    let out =
      Compiler.Pipeline.compile ~mode:Compiler.Pipeline.Eff (Rng.create 9L)
        (Compiler.Pipeline.Gates c)
    in
    (Circuit.count_2q out.Compiler.Pipeline.circuit, out.Compiler.Pipeline.final_mapping)
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same count" (fst a) (fst b);
  Alcotest.(check bool) "same mapping" true (snd a = snd b)

let test_full_no_worse_than_eff () =
  List.iter
    (fun seed ->
      let c = random_ccx_program (Rng.create (Int64.of_int seed)) 4 12 in
      let compile mode =
        (Compiler.Pipeline.compile ~mode (Rng.create 2L) (Compiler.Pipeline.Gates c))
          .Compiler.Pipeline.circuit |> Circuit.count_2q
      in
      let eff = compile Compiler.Pipeline.Eff and full = compile Compiler.Pipeline.Full in
      Alcotest.(check bool)
        (Printf.sprintf "full (%d) <= eff (%d)" full eff)
        true (full <= eff))
    [ 7; 21 ]

let test_pulses_for_compiled_circuit () =
  (* the whole chain: compile, then Algorithm 1 on every gate succeeds *)
  let c = random_ccx_program (Rng.create 66L) 4 8 in
  let out = Compiler.Pipeline.compile ~mode:Compiler.Pipeline.Eff (Rng.create 3L) (Compiler.Pipeline.Gates c) in
  match Reqisc.pulses Reqisc.xy_coupling out.Compiler.Pipeline.circuit with
  | Error e -> Alcotest.fail (Robust.Err.to_string e)
  | Ok instrs ->
    Alcotest.(check int) "one pulse per 2q gate"
      (Circuit.count_2q out.Compiler.Pipeline.circuit)
      (List.length instrs);
    List.iter
      (fun (i : Reqisc.pulse_instruction) ->
        Alcotest.(check bool) "finite tau" true
          (Float.is_finite i.pulse.Microarch.Genashn.tau
          && i.pulse.Microarch.Genashn.tau >= 0.0))
      instrs

(* -------------------------------------------------------- routing extra *)

let test_routing_deterministic () =
  let r = Rng.create 77L in
  let c =
    Circuit.create 6
      (List.init 15 (fun _ ->
           let a = Rng.int r 6 in
           let b = (a + 1 + Rng.int r 5) mod 6 in
           Gate.su4 a b (Quantum.Haar.su4 r)))
  in
  let topo = Compiler.Routing.grid ~rows:2 ~cols:3 in
  let route () =
    let out = Compiler.Routing.route ~mirror:true (Rng.create 5L) topo c in
    Circuit.count_2q out.Compiler.Routing.circuit
  in
  Alcotest.(check int) "same route" (route ()) (route ())

let test_routing_wide_grid () =
  let r = Rng.create 88L in
  let n = 9 in
  let c =
    Circuit.create n
      (List.init 25 (fun _ ->
           let a = Rng.int r n in
           let b = (a + 1 + Rng.int r (n - 1)) mod n in
           Gate.su4 a b (Quantum.Haar.su4 r)))
  in
  let topo = Compiler.Routing.grid ~rows:3 ~cols:3 in
  let out = Compiler.Routing.route ~mirror:true (Rng.create 5L) topo c in
  List.iter
    (fun (g : Gate.t) ->
      if Gate.is_2q g then
        Alcotest.(check bool) "adjacent" true
          (topo.Compiler.Routing.dist.(g.qubits.(0)).(g.qubits.(1)) = 1))
    out.Compiler.Routing.circuit.Circuit.gates

(* --------------------------------------------------------- edge cases *)

let test_kak_boundary_gates () =
  (* gates on chamber faces and edges decompose and reconstruct *)
  List.iter
    (fun (x, y, z) ->
      let c = Weyl.Coords.make x y z in
      let u = Weyl.Kak.canonical c in
      let d = Weyl.Kak.decompose u in
      Alcotest.(check bool)
        (Printf.sprintf "boundary %s -> %s" (Weyl.Coords.to_string c)
           (Weyl.Coords.to_string d.Weyl.Kak.coords))
        true
        (Weyl.Coords.dist c d.Weyl.Kak.coords < 1e-7
        && Mat.equal ~tol:1e-7 (Weyl.Kak.reconstruct d) u))
    [
      (Float.pi /. 4.0, 0.4, 0.4);
      (Float.pi /. 4.0, Float.pi /. 4.0, 0.1);
      (0.5, 0.5, 0.5);
      (0.5, 0.5, -0.5);
      (0.3, 0.3, 0.0);
      (Float.pi /. 4.0, 0.2, 0.0);
    ]

let test_dagger_flips_z () =
  (* class of the inverse: (x, y, z) -> (x, y, -z) for interior points *)
  let c = Weyl.Coords.make 0.6 0.4 0.2 in
  let u = Weyl.Kak.canonical c in
  let cd = Weyl.Kak.coords_of (Mat.dagger u) in
  Alcotest.(check bool)
    (Printf.sprintf "dagger class %s" (Weyl.Coords.to_string cd))
    true
    (Weyl.Coords.dist cd (Weyl.Coords.make 0.6 0.4 (-0.2)) < 1e-7)

let test_fuse_idempotent () =
  let c = random_ccx_program (Rng.create 99L) 4 10 in
  let low = Decomp.lower_to_cx c in
  let once = Compiler.Blocks.fuse_2q low in
  let twice = Compiler.Blocks.fuse_2q once in
  Alcotest.(check int) "fuse idempotent on #2q" (Circuit.count_2q once)
    (Circuit.count_2q twice)

let test_noise_extremes () =
  let bell = Circuit.create 2 [ Gate.h 0; Gate.cx 0 1 ] in
  let f0 =
    Noise.Depolarizing.program_fidelity (Rng.create 1L)
      (Noise.Depolarizing.uniform_p 0.0) ~trajectories:5 bell
  in
  Alcotest.(check (float 1e-9)) "no noise = 1" 1.0 f0;
  let f1 =
    Noise.Depolarizing.program_fidelity (Rng.create 1L)
      (Noise.Depolarizing.uniform_p 1.0) ~trajectories:400 bell
  in
  Alcotest.(check bool) (Printf.sprintf "total noise hurts (%.3f)" f1) true (f1 < 0.95)

let qcheck_tests =
  let arb_seed = QCheck.make QCheck.Gen.(map Int64.of_int (int_bound 1000000)) in
  [
    QCheck.Test.make ~count:15 ~name:"mirroring preserves semantics" arb_seed
      (fun seed ->
        let r = Rng.create seed in
        let c =
          Circuit.create 3
            (List.init 6 (fun _ ->
                 let a = Rng.int r 3 in
                 let b = (a + 1 + Rng.int r 2) mod 3 in
                 Gate.su4 a b (Quantum.Haar.su4 r)))
        in
        let m = Compiler.Mirroring.run ~r:0.4 c in
        let fix = arrange_matrix 3 m.Compiler.Mirroring.final_mapping in
        Mat.allclose_up_to_phase ~tol:1e-7 (Circuit.unitary c)
          (Mat.mul (Mat.dagger fix) (Circuit.unitary m.Compiler.Mirroring.circuit)));
    QCheck.Test.make ~count:10 ~name:"solve reconstructs haar targets" arb_seed
      (fun seed ->
        let r = Rng.create seed in
        let u = Quantum.Haar.su4 r in
        let c = Weyl.Kak.coords_of u in
        if Weyl.Coords.norm1 c < 0.25 then true
        else
          match Microarch.Genashn.solve (Microarch.Coupling.xy ~g:1.0) u with
          | Error _ -> false
          | Ok res -> Mat.equal ~tol:1e-5 (Microarch.Genashn.reconstruct res) u);
  ]

let () =
  Alcotest.run "integration"
    [
      ( "microarch invariants",
        [
          Alcotest.test_case "free evolution optimal" `Quick test_free_evolution_is_optimal;
          Alcotest.test_case "tau beats conventional" `Quick test_tau_below_conventional_everywhere;
          Alcotest.test_case "ea root ladder" `Quick test_ea_roots_ladder;
          Alcotest.test_case "corrections unitary" `Quick test_pulse_corrections_unitary;
        ] );
      ( "pipelines",
        [
          Alcotest.test_case "random programs" `Slow test_pipeline_random_programs;
          Alcotest.test_case "deterministic" `Slow test_pipeline_deterministic;
          Alcotest.test_case "full <= eff" `Slow test_full_no_worse_than_eff;
          Alcotest.test_case "pulses for compiled" `Slow test_pulses_for_compiled_circuit;
        ] );
      ( "routing",
        [
          Alcotest.test_case "deterministic" `Quick test_routing_deterministic;
          Alcotest.test_case "wide grid" `Quick test_routing_wide_grid;
        ] );
      ( "edge cases",
        [
          Alcotest.test_case "kak boundary" `Quick test_kak_boundary_gates;
          Alcotest.test_case "dagger flips z" `Quick test_dagger_flips_z;
          Alcotest.test_case "fuse idempotent" `Quick test_fuse_idempotent;
          Alcotest.test_case "noise extremes" `Quick test_noise_extremes;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
