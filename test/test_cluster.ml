(* Cluster subsystem: ring placement properties (determinism, balance,
   minimal movement on membership change), the health state machine's
   transition contract, and the router end-to-end over real shards —
   fingerprint routing, merged stats, failover to the ring successor,
   journal-replay warmup after a cold rejoin, and the typed
   [unavailable] when no shard is routable. *)

module J = Serve.Json
module T = Serve.Transport
module C = Serve.Client
module Ring = Cluster.Ring
module Health = Cluster.Health

let () = Robust.Fault.configure None

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ ring *)

let keys n = List.init n (fun i -> Printf.sprintf "key-%d" i)

let tally ring ks =
  let counts = Hashtbl.create 8 in
  List.iter
    (fun k ->
      match Ring.owner ring k with
      | None -> Alcotest.fail "owner on a non-empty ring"
      | Some s ->
        Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s)))
    ks;
  counts

let test_ring_determinism () =
  let a = Ring.create [ "s1"; "s2"; "s3" ] in
  let b = Ring.create [ "s3"; "s1"; "s2" ] in
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        ("insertion order irrelevant for " ^ k)
        (Ring.owner a k) (Ring.owner b k))
    (keys 500);
  (* members keep first-added order; duplicates are dropped *)
  Alcotest.(check (list string))
    "members" [ "s1"; "s2"; "s3" ]
    (Ring.members (Ring.create [ "s1"; "s2"; "s1"; "s3"; "s2" ]));
  (* empty ring: no owner, no order *)
  let empty = Ring.create [] in
  Alcotest.(check (option string)) "empty owner" None (Ring.owner empty "k");
  Alcotest.(check (list string)) "empty order" [] (Ring.order empty "k")

let test_ring_order_is_preference_list () =
  let ring = Ring.create [ "s1"; "s2"; "s3"; "s4" ] in
  List.iter
    (fun k ->
      let order = Ring.order ring k in
      Alcotest.(check int) "order is a permutation" 4 (List.length order);
      Alcotest.(check (list string))
        "order covers all members"
        (List.sort compare (Ring.members ring))
        (List.sort compare order);
      Alcotest.(check (option string))
        "order head is the owner" (Ring.owner ring k)
        (match order with h :: _ -> Some h | [] -> None))
    (keys 100)

(* random distinct shard-name sets for the qcheck properties *)
let arb_shards =
  QCheck.make
    ~print:(String.concat ",")
    QCheck.Gen.(
      let* n = int_range 3 8 in
      let* salt = int_bound 10_000 in
      return (List.init n (fun i -> Printf.sprintf "tcp:10.0.%d.%d:7000" salt i)))

let prop_balance =
  QCheck.Test.make ~count:20 ~name:"ring balance within 2x of fair share" arb_shards
    (fun shards ->
      let n_keys = 6000 in
      let ring = Ring.create shards in
      let counts = tally ring (keys n_keys) in
      let fair = float_of_int n_keys /. float_of_int (List.length shards) in
      List.for_all
        (fun s ->
          let c = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts s)) in
          (* 128 vnodes put per-shard load within a few percent of fair;
             2x is the gross-imbalance alarm, not the expected spread *)
          c > fair /. 2.0 && c < fair *. 2.0)
        shards)

let prop_join_movement =
  QCheck.Test.make ~count:20 ~name:"join moves ~1/(n+1) keys, all to the joiner"
    arb_shards (fun shards ->
      let n_keys = 6000 in
      let before = Ring.create shards in
      let after = Ring.add before "tcp:10.1.1.1:7000" in
      let moved =
        List.filter (fun k -> Ring.owner before k <> Ring.owner after k) (keys n_keys)
      in
      (* every moved key moves TO the joiner: existing shards never
         exchange keys among themselves *)
      List.for_all
        (fun k -> Ring.owner after k = Some "tcp:10.1.1.1:7000")
        moved
      && float_of_int (List.length moved)
         < 2.5 *. float_of_int n_keys /. float_of_int (List.length shards + 1))

let prop_leave_movement =
  QCheck.Test.make ~count:20 ~name:"leave moves only the leaver's keys" arb_shards
    (fun shards ->
      let leaver = List.hd shards in
      let before = Ring.create shards in
      let after = Ring.remove before leaver in
      List.for_all
        (fun k ->
          match Ring.owner before k with
          | Some s when s = leaver ->
            (* the leaver's keys land on surviving members *)
            Ring.owner after k <> Some leaver && Ring.owner after k <> None
          | o -> Ring.owner after k = o)
        (keys 6000))

(* ---------------------------------------------------------------- health *)

let st = Alcotest.testable (Fmt.of_to_string Health.state_to_string) ( = )

let test_health_walk () =
  let h = Health.create ~suspect_after:1 ~down_after:2 2 in
  Alcotest.check st "starts up" Health.Up (Health.state h 0);
  Alcotest.(check bool) "up is routable" true (Health.routable h 0);
  (* Up -> Suspect -> Down by consecutive failures *)
  (match Health.note_failure h 0 with
  | Health.Up, Health.Suspect -> ()
  | b, a ->
    Alcotest.failf "first failure: %s -> %s" (Health.state_to_string b)
      (Health.state_to_string a));
  Alcotest.(check bool) "suspect still routable" true (Health.routable h 0);
  (match Health.note_failure h 0 with
  | Health.Suspect, Health.Down -> ()
  | _ -> Alcotest.fail "second failure must reach Down");
  Alcotest.(check bool) "down is not routable" false (Health.routable h 0);
  (* a Down shard that answers needs a warmup; note_success does NOT
     change its state — only begin_warmup does, exactly once *)
  (match Health.note_success h 0 with
  | `Needs_warmup -> ()
  | _ -> Alcotest.fail "down + answering = needs warmup");
  Alcotest.check st "still down" Health.Down (Health.state h 0);
  Alcotest.(check bool) "warmup claimed" true (Health.begin_warmup h 0);
  Alcotest.(check bool) "warmup claimed once" false (Health.begin_warmup h 0);
  Alcotest.check st "warming" Health.Warming (Health.state h 0);
  Alcotest.(check bool) "warming is not routable" false (Health.routable h 0);
  (match Health.note_success h 0 with
  | `Warming -> ()
  | _ -> Alcotest.fail "success during warmup leaves it to the warmer");
  (* a warmup that fails goes straight back to Down *)
  (match Health.note_failure h 0 with
  | Health.Warming, Health.Down -> ()
  | _ -> Alcotest.fail "warming fails back to Down");
  Alcotest.(check bool) "warmup reclaimable" true (Health.begin_warmup h 0);
  Health.finish_warmup h 0;
  Alcotest.check st "warmed up" Health.Up (Health.state h 0);
  (* the failure count was reset: one failure is Suspect again, and a
     success while Suspect recovers immediately *)
  (match Health.note_failure h 0 with
  | Health.Up, Health.Suspect -> ()
  | _ -> Alcotest.fail "post-warmup failure count must restart");
  (match Health.note_success h 0 with
  | `Recovered -> ()
  | _ -> Alcotest.fail "suspect + success = recovered");
  (match Health.note_success h 0 with
  | `Up_already -> ()
  | _ -> Alcotest.fail "up + success = up already");
  (* shard 1 was never touched *)
  Alcotest.check st "other shard untouched" Health.Up (Health.state h 1);
  Alcotest.(check (pair int int))
    "counts" (2, 0)
    (match Health.counts h with u, s, _, _ -> (u, s))

(* ---------------------------------------------------------------- router *)

let shard_config ~cache_path =
  {
    T.default_config with
    T.server =
      {
        Serve.Server.default_config with
        Serve.Server.workers = 1;
        cache_path = Some cache_path;
      };
  }

let spawn_shard ?cache_path addr =
  let config =
    match cache_path with Some p -> shard_config ~cache_path:p | None -> T.default_config
  in
  let ready = Atomic.make false in
  let actual = ref addr in
  let result = ref (Error "shard did not return") in
  let th =
    Thread.create
      (fun () ->
        result :=
          T.serve ~config
            ~ready:(fun a ->
              actual := a;
              Atomic.set ready true)
            addr)
      ()
  in
  let rec wait n =
    if not (Atomic.get ready) then
      if n > 2000 then Alcotest.fail "shard did not become ready"
      else begin
        Thread.delay 0.005;
        wait (n + 1)
      end
  in
  wait 0;
  ( !actual,
    fun () ->
      Thread.join th;
      match !result with
      | Error e -> Alcotest.failf "shard failed: %s" e
      | Ok s -> s )

let spawn_router ?(config = Cluster.Router.default_config) shard_addrs =
  let router =
    match Cluster.Router.create ~config (List.map T.addr_to_string shard_addrs) with
    | Ok r -> r
    | Error e -> Alcotest.failf "router create: %s" e
  in
  let ready = Atomic.make false in
  let actual = ref (T.Tcp ("127.0.0.1", 0)) in
  let result = ref (Error "router did not return") in
  let th =
    Thread.create
      (fun () ->
        result :=
          T.serve_backend
            ~ready:(fun a ->
              actual := a;
              Atomic.set ready true)
            (Cluster.Router.backend router)
            (T.Tcp ("127.0.0.1", 0)))
      ()
  in
  let rec wait n =
    if not (Atomic.get ready) then
      if n > 2000 then Alcotest.fail "router did not become ready"
      else begin
        Thread.delay 0.005;
        wait (n + 1)
      end
  in
  wait 0;
  ( !actual,
    fun () ->
      Thread.join th;
      match !result with
      | Error e -> Alcotest.failf "router failed: %s" e
      | Ok s -> s )

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (C.error_to_string e)

let shutdown_body = J.Obj [ ("op", J.Str "shutdown") ]
let stats_body = J.Obj [ ("op", J.Str "stats") ]

let num_at json path =
  let rec go node = function
    | [] -> J.num node
    | k :: rest -> ( match J.member k node with Some n -> go n rest | None -> None)
  in
  go json path

(* a pulses request whose ring key [pred]icate holds — found by scanning
   a coord family with the same ring the router builds *)
let coords_owned_by ~addrs pred =
  let ring = Ring.create (List.map T.addr_to_string addrs) in
  let rec scan i =
    if i >= 4096 then Alcotest.fail "no coord owned by the wanted shard"
    else
      let z = 0.001 +. (0.0002 *. float_of_int i) in
      let body =
        {
          Serve.Protocol.op =
            Serve.Protocol.Pulses
              { target = Serve.Protocol.Coords (0.45, 0.3, z); coupling = "xy"; passes = None };
          budget = None;
          deadline_ms = None;
        }
      in
      let key =
        match Serve.Protocol.body_key body with
        | Some k -> k
        | None -> Alcotest.fail "pulses has a key"
      in
      match Ring.owner ring key with
      | Some owner when pred owner -> (0.45, 0.3, z)
      | _ -> scan (i + 1)
  in
  scan 0

let pulses_req (x, y, z) =
  J.Obj [ ("op", J.Str "pulses"); ("coords", J.Arr [ J.Num x; J.Num y; J.Num z ]) ]

let test_router_end_to_end () =
  (* real cache partitions: the aggregate-hits assertion needs them *)
  let cache1 = Filename.temp_file "reqisc_cluster_test" ".rqcache" in
  let cache2 = Filename.temp_file "reqisc_cluster_test" ".rqcache" in
  let s1, join1 = spawn_shard ~cache_path:cache1 (T.Tcp ("127.0.0.1", 0)) in
  let s2, join2 = spawn_shard ~cache_path:cache2 (T.Tcp ("127.0.0.1", 0)) in
  let router, join_router = spawn_router [ s1; s2 ] in
  let c = ok_or_fail "connect" (C.connect router) in
  (* cnot and cz share a Weyl fingerprint: the second request must be a
     cache hit on whichever shard owns the key *)
  let r1 =
    ok_or_fail "cnot" (C.request c (J.Obj [ ("op", J.Str "pulses"); ("gate", J.Str "cnot") ]))
  in
  Alcotest.(check bool) "pulse payload relayed" true (contains (J.to_string r1) "\"tau\"");
  Alcotest.(check (option int))
    "response carries v" (Some Serve.Protocol.version) (J.mem_int "v" r1);
  let r2 =
    ok_or_fail "cz" (C.request c (J.Obj [ ("op", J.Str "pulses"); ("gate", J.Str "cz") ]))
  in
  Alcotest.(check (option bool)) "cz ok" (Some true) (J.mem_bool "ok" r2);
  (* the router keeps the client's id through forwarding *)
  let tagged =
    ok_or_fail "tagged"
      (C.request c (J.Obj [ ("id", J.Str "tag-1"); ("op", J.Str "stats") ]))
  in
  Alcotest.(check (option string)) "id preserved" (Some "tag-1") (J.mem_str "id" tagged);
  (* malformed line: typed bad_request from the router itself *)
  ok_or_fail "send junk" (C.send_line c "this is not json");
  (match C.recv c with
  | Ok j ->
    Alcotest.(check (option bool)) "junk rejected" (Some false) (J.mem_bool "ok" j);
    Alcotest.(check bool) "typed bad_request" true (contains (J.to_string j) "bad_request")
  | Error e -> Alcotest.failf "junk reply: %s" (C.error_to_string e));
  (* merged stats: cluster block, aggregate block, one entry per shard *)
  let stats = ok_or_fail "stats" (C.request c stats_body) in
  Alcotest.(check (option (float 1e-6)))
    "both shards up" (Some 2.0)
    (num_at stats [ "result"; "cluster"; "up" ]);
  Alcotest.(check bool)
    "cache hit counted in aggregate" true
    (match num_at stats [ "result"; "aggregate"; "cache"; "hits" ] with
    | Some h -> h >= 1.0
    | None -> false);
  (match J.member "result" stats with
  | Some r -> (
    match J.member "shards" r with
    | Some (J.Arr shards) ->
      Alcotest.(check int) "per-shard array" 2 (List.length shards);
      List.iter
        (fun s ->
          Alcotest.(check (option string)) "shard state" (Some "up") (J.mem_str "state" s))
        shards
    | _ -> Alcotest.fail "stats carries a shards array")
  | None -> Alcotest.fail "stats carries a result");
  (* shutdown fans out to every shard, then drains the router *)
  let bye = ok_or_fail "shutdown" (C.request c shutdown_body) in
  Alcotest.(check (option bool)) "shutdown ok" (Some true) (J.mem_bool "ok" bye);
  Alcotest.(check (option (float 1e-6)))
    "both shards acked" (Some 2.0)
    (num_at bye [ "result"; "shards_acked" ]);
  C.close c;
  ignore (join_router ());
  ignore (join1 ());
  ignore (join2 ());
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ cache1; cache2 ]

let test_router_failover_and_warmup () =
  let cache2 = Filename.temp_file "reqisc_cluster_test" ".rqcache" in
  let s1, join1 = spawn_shard (T.Tcp ("127.0.0.1", 0)) in
  let s2, join2 = spawn_shard ~cache_path:cache2 (T.Tcp ("127.0.0.1", 0)) in
  let config =
    {
      Cluster.Router.default_config with
      Cluster.Router.probe_interval = 0.1;
      connect_retries = 1;
      connect_backoff = 0.01;
    }
  in
  let router, join_router = spawn_router ~config [ s1; s2 ] in
  let victim_name = T.addr_to_string s2 in
  let on_victim = coords_owned_by ~addrs:[ s1; s2 ] (fun o -> o = victim_name) in
  let c = ok_or_fail "connect" (C.connect ~recv_timeout:10.0 router) in
  (* route one request to the victim while it is healthy *)
  let r0 = ok_or_fail "warm victim" (C.request c (pulses_req on_victim)) in
  Alcotest.(check (option bool)) "victim answers" (Some true) (J.mem_bool "ok" r0);
  (* kill the victim out from under the router *)
  ignore (ok_or_fail "victim shutdown" (C.rpc s2 shutdown_body));
  ignore (join2 ());
  (* its keys must now fail over to the ring successor, transparently *)
  let r1 = ok_or_fail "failover" (C.request c (pulses_req on_victim)) in
  Alcotest.(check (option bool)) "failover answers" (Some true) (J.mem_bool "ok" r1);
  let stats = ok_or_fail "stats" (C.request c stats_body) in
  Alcotest.(check bool)
    "failover counted" true
    (match num_at stats [ "result"; "cluster"; "failovers" ] with
    | Some f -> f >= 1.0
    | None -> false);
  (* let the prober walk the dead shard to Down — rejoining while it is
     merely Suspect would recover it without a warmup *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let down = ref false in
  while (not !down) && Unix.gettimeofday () < deadline do
    Thread.delay 0.05;
    let s = ok_or_fail "poll down" (C.rpc router stats_body) in
    down := num_at s [ "result"; "cluster"; "down" ] = Some 1.0
  done;
  Alcotest.(check bool) "probes mark the dead shard down" true !down;
  (* rejoin the victim cold on its old port; the prober must warm it up
     from the journal before reporting the cluster whole again *)
  let rejoin_cache = Filename.temp_file "reqisc_cluster_test" ".rqcache" in
  let _, join2' = spawn_shard ~cache_path:rejoin_cache s2 in
  let deadline = Unix.gettimeofday () +. 10.0 in
  let warmed = ref false in
  while (not !warmed) && Unix.gettimeofday () < deadline do
    Thread.delay 0.1;
    let s = ok_or_fail "poll stats" (C.rpc router stats_body) in
    warmed :=
      num_at s [ "result"; "cluster"; "up" ] = Some 2.0
      && (match num_at s [ "result"; "cluster"; "warmups" ] with
         | Some w -> w >= 1.0
         | None -> false)
  done;
  Alcotest.(check bool) "victim warmed up and rejoined" true !warmed;
  (* and its partition serves again — straight from the replayed cache *)
  let r2 = ok_or_fail "after rejoin" (C.request c (pulses_req on_victim)) in
  Alcotest.(check (option bool)) "rejoined shard answers" (Some true) (J.mem_bool "ok" r2);
  ignore (ok_or_fail "cluster shutdown" (C.request c shutdown_body));
  C.close c;
  ignore (join_router ());
  ignore (join1 ());
  ignore (join2' ());
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ cache2; rejoin_cache ]

let test_router_unavailable () =
  let s1, join1 = spawn_shard (T.Tcp ("127.0.0.1", 0)) in
  let config =
    {
      Cluster.Router.default_config with
      Cluster.Router.probe_interval = 30.0 (* no probe interference *);
      connect_retries = 0;
      connect_backoff = 0.01;
      recv_timeout = 2.0;
    }
  in
  let router, join_router = spawn_router ~config [ s1 ] in
  ignore (ok_or_fail "shard shutdown" (C.rpc s1 shutdown_body));
  ignore (join1 ());
  let c = ok_or_fail "connect" (C.connect router) in
  (* every shard (all one of them) fails: the client sees a typed
     unavailable from the routing stage, not a hang or a disconnect *)
  let check_unavailable what =
    match C.request c (J.Obj [ ("op", J.Str "pulses"); ("gate", J.Str "cnot") ]) with
    | Error (C.Server_error { kind; stage; _ }) ->
      Alcotest.(check string) (what ^ " kind") "unavailable" kind;
      Alcotest.(check string) (what ^ " stage") "cluster.route" stage
    | Ok j -> Alcotest.failf "%s: answered with a dead shard: %s" what (J.to_string j)
    | Error e -> Alcotest.failf "%s: expected unavailable, got %s" what (C.error_to_string e)
  in
  (* first request walks the connect-retry path; by the second the shard
     is marked Down, exercising the no-routable-shard fast path *)
  check_unavailable "via forward failure";
  check_unavailable "via health fast path";
  ignore (ok_or_fail "router shutdown" (C.request c shutdown_body));
  C.close c;
  ignore (join_router ())

(* the transport seam the router plugs into, isolated: a trivial backend
   that echoes the parse verdict proves serve_backend needs nothing from
   the engine *)
let test_serve_backend_seam () =
  let served = Atomic.make 0 in
  let drained = Atomic.make false in
  let backend =
    {
      T.submit =
        (fun ~raw:_ parsed ~respond ->
          Atomic.incr served;
          match parsed.Serve.Protocol.body with
          | Ok body ->
            respond
              (Serve.Protocol.ok_response ~id:parsed.Serve.Protocol.id
                 ~op:(Serve.Protocol.op_name body.Serve.Protocol.op)
                 (J.Str "echo"))
          | Error e ->
            respond
              (Serve.Protocol.error_response ~id:parsed.Serve.Protocol.id
                 ~kind:"bad_request" ~stage:"test.echo" e));
      queue_depth = (fun () -> 0);
      drain = (fun () -> Atomic.set drained true);
      served = (fun () -> Atomic.get served);
      errors = (fun () -> 0);
    }
  in
  let ready = Atomic.make false in
  let actual = ref (T.Tcp ("127.0.0.1", 0)) in
  let result = ref (Error "backend server did not return") in
  let th =
    Thread.create
      (fun () ->
        result :=
          T.serve_backend
            ~ready:(fun a ->
              actual := a;
              Atomic.set ready true)
            backend
            (T.Tcp ("127.0.0.1", 0)))
      ()
  in
  while not (Atomic.get ready) do
    Thread.delay 0.005
  done;
  let c = ok_or_fail "connect" (C.connect !actual) in
  let r = ok_or_fail "echo" (C.request c stats_body) in
  Alcotest.(check (option string)) "backend result" (Some "echo")
    (match J.member "result" r with Some (J.Str s) -> Some s | _ -> None);
  ignore (ok_or_fail "shutdown" (C.request c shutdown_body));
  C.close c;
  Thread.join th;
  (match !result with
  | Error e -> Alcotest.failf "serve_backend failed: %s" e
  | Ok summary -> Alcotest.(check int) "served through the seam" 2 summary.T.served);
  Alcotest.(check bool) "backend drained at shutdown" true (Atomic.get drained)

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        Alcotest.test_case "determinism" `Quick test_ring_determinism
        :: Alcotest.test_case "order is the preference list" `Quick
             test_ring_order_is_preference_list
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_balance; prop_join_movement; prop_leave_movement ] );
      ("health", [ Alcotest.test_case "transition walk" `Quick test_health_walk ]);
      ( "router",
        [
          Alcotest.test_case "end to end over two shards" `Quick test_router_end_to_end;
          Alcotest.test_case "failover and warmup" `Quick test_router_failover_and_warmup;
          Alcotest.test_case "unavailable when no shard routable" `Quick
            test_router_unavailable;
          Alcotest.test_case "serve_backend seam" `Quick test_serve_backend_seam;
        ] );
    ]
