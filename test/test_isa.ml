(* Cross-ISA differential matrix: every benchmark circuit compiled to
   every target ISA must stay statevector-equivalent to the uncompiled
   source (up to global phase), every lowered 2Q gate must come from the
   target's native set, per-gate synthesis must round-trip random SU(4)
   unitaries on every target, CNOT synthesis must hit the analytic
   minimum per Weyl class, the serve fingerprint must keep "isa" and
   "passes" keys disjoint (and legacy keys byte-identical), and the
   negative paths must be typed bad_requests at stage "compiler.isa". *)

open Numerics
open Compiler

let seed = 20260809L

(* corpus: same shapes as test_passes (each test binary is standalone) *)
let toffoli_chain =
  Circuit.create 4
    [
      Gate.h 0;
      Gate.ccx 0 1 2;
      Gate.cx 2 3;
      Gate.ccx 1 2 3;
      Gate.x 1;
      Gate.ccx 0 1 2;
    ]

let qft4 =
  let gates = ref [] in
  let n = 4 in
  for i = 0 to n - 1 do
    gates := Gate.h i :: !gates;
    for j = i + 1 to n - 1 do
      gates := Gate.cphase j i (Float.pi /. (2.0 ** float_of_int (j - i))) :: !gates
    done
  done;
  Circuit.create n (List.rev !gates)

let pauli_prog =
  {
    Phoenix.n = 3;
    terms =
      [
        { Phoenix.pauli = Quantum.Pauli.of_string "ZZI"; angle = 0.7 };
        { Phoenix.pauli = Quantum.Pauli.of_string "IZZ"; angle = 0.4 };
        { Phoenix.pauli = Quantum.Pauli.of_string "ZZI"; angle = -0.2 };
        { Phoenix.pauli = Quantum.Pauli.of_string "XIX"; angle = 0.9 };
      ];
  }

let corpus =
  [
    ("toffoli_chain", Pass.Gates toffoli_chain);
    ("qft4", Pass.Gates qft4);
    ("pauli", Pass.Pauli pauli_prog);
  ]

(* ------------------------------------------- differential test matrix *)

(* every (bench, target) cell: compile through the lowering plan, check
   the result against the uncompiled source with the statevector oracle,
   and check every emitted 2Q gate is native to the target *)
let test_matrix () =
  List.iter
    (fun (t : Isa.target) ->
      let plan = Passes.plan_for_isa t in
      List.iter
        (fun (bench, source) ->
          let what = Printf.sprintf "%s/%s" t.Isa.name bench in
          let ctx = Pass.make_ctx (Rng.create seed) in
          match Passes.run_plan ctx plan (Pass.Source source) with
          | Error e -> Alcotest.failf "%s: %s" what (Robust.Err.to_string e)
          | Ok (ir, _) -> (
            (match
               Pass.check_equiv
                 { Pass.default_oracle with Pass.tol = 1e-4 }
                 ~reference:(Pass.Source source)
                 ~candidate:ir
             with
            | Ok _ -> ()
            | Error msg -> Alcotest.failf "%s: not equivalent: %s" what msg);
            match ir with
            | Pass.Native { isa; circuit } ->
              Alcotest.(check string) (what ^ " tags its isa") t.Isa.name isa;
              (* parametrized gates carry their angles in the label
                 ("can(x,y,z)"), so nativeness is a prefix match *)
              let native label =
                List.exists
                  (fun n ->
                    label = n || String.starts_with ~prefix:(n ^ "(") label)
                  t.Isa.native_2q
              in
              List.iter
                (fun (g : Gate.t) ->
                  if Gate.is_2q g && not (native g.Gate.label) then
                    Alcotest.failf "%s: emitted non-native 2Q gate %s" what
                      g.Gate.label)
                circuit.Circuit.gates
            | ir -> Alcotest.failf "%s: expected native IR, got %s" what (Pass.ir_form ir)))
        corpus)
    Isa.targets

(* the facade threads ?isa end to end; an unknown name is a typed error *)
let test_facade () =
  (match Reqisc.compile ~isa:"cnot" (Rng.create seed) toffoli_chain with
  | Error e -> Alcotest.failf "compile ~isa:cnot: %s" (Robust.Err.to_string e)
  | Ok out ->
    List.iter
      (fun (g : Gate.t) ->
        if Gate.is_2q g then
          Alcotest.(check string) "cnot target emits only cx" "cx" g.Gate.label)
      out.Reqisc.circuit.Circuit.gates);
  match Reqisc.compile ~isa:"bogus" (Rng.create seed) toffoli_chain with
  | Ok _ -> Alcotest.fail "compile accepted an unknown isa"
  | Error e ->
    Alcotest.(check string) "typed at the compiler's stage" "compiler.isa"
      (Robust.Err.stage e)

(* ------------------------------------------------ synthesis round-trip *)

let contains_sub msg sub =
  let ls = String.length msg and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub msg i lb = sub || go (i + 1)) in
  go 0

let arb_seed = QCheck.make QCheck.Gen.(map Int64.of_int (int_bound 1000000))

(* synthesize target (Kak.coords u) must land in u's Weyl class for every
   target, and the dressed lowering must reproduce u itself exactly *)
let prop_synth_roundtrip =
  QCheck.Test.make ~count:20 ~name:"synthesize covers random SU(4) on all targets"
    arb_seed (fun s ->
      let rng = Rng.create s in
      let u = Quantum.Haar.su4 rng in
      let c = Weyl.Kak.coords_of u in
      List.for_all
        (fun (t : Isa.target) ->
          let gates = t.Isa.synthesize 0 1 c in
          let class_ok =
            match gates with
            | [] -> Weyl.Coords.dist c Weyl.Coords.identity < 1e-7
            | _ ->
              Weyl.Kak.locally_equivalent
                (Circuit.unitary (Circuit.create 2 gates))
                u
          in
          let lowered = Isa.lower t (Circuit.create 2 [ Gate.su4 0 1 u ]) in
          class_ok
          && Mat.frobenius_dist u (Circuit.unitary lowered) < 1e-6
          && List.length (List.filter Gate.is_2q gates) = t.Isa.gates_for c)
        Isa.targets)

(* CNOT-target synthesis is optimal: <= 3 CNOTs always, and exactly the
   analytic minimum (Decomp.cnot_count_for) on every class *)
let prop_cnot_optimal =
  QCheck.Test.make ~count:30 ~name:"cnot synthesis hits the analytic minimum"
    arb_seed (fun s ->
      let rng = Rng.create s in
      let c = Weyl.Kak.coords_of (Quantum.Haar.su4 rng) in
      let cnot =
        match Isa.find "cnot" with Some t -> t | None -> assert false
      in
      let emitted =
        List.length (List.filter Gate.is_2q (cnot.Isa.synthesize 0 1 c))
      in
      emitted <= 3 && emitted = Decomp.cnot_count_for c)

let test_cnot_known_classes () =
  let cnot = match Isa.find "cnot" with Some t -> t | None -> assert false in
  List.iter
    (fun (tag, c, expect) ->
      let emitted =
        List.length (List.filter Gate.is_2q (cnot.Isa.synthesize 0 1 c))
      in
      Alcotest.(check int) (tag ^ " analytic minimum") expect emitted;
      Alcotest.(check int) (tag ^ " gates_for agrees") expect (cnot.Isa.gates_for c))
    [
      ("identity", Weyl.Coords.identity, 0);
      ("cnot-class", Weyl.Coords.cnot, 1);
      ("iswap-class", Weyl.Coords.iswap, 2);
      ("swap-class", Weyl.Coords.swap, 3);
      ("generic", Weyl.Coords.make 0.6 0.3 0.2, 3);
    ]

(* ------------------------------------------------ fingerprint regression *)

let body_of line =
  match Serve.Protocol.parse_line line with
  | { Serve.Protocol.body = Ok b; _ } -> b
  | { Serve.Protocol.body = Error e; _ } ->
    Alcotest.failf "parse %s: %s" line e

let key_of line =
  match Serve.Protocol.body_key (body_of line) with
  | Some k -> k
  | None -> Alcotest.failf "no key for %s" line

let test_fingerprint () =
  let base = "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_1\"}" in
  (* omitting the field reproduces the exact legacy key bytes *)
  let module F = Cache.Fingerprint in
  let legacy =
    F.key
      (F.opt F.float
         (F.opt F.int
            (F.bool (F.str (F.str (F.create "serve.compile.v1") "alu_1") "eff") false)
            None)
         None)
  in
  Alcotest.(check string) "legacy key bytes unchanged" legacy (key_of base);
  (* isa-only, passes-only and absent are three distinct keys — and the
     same name under the two markers can never collide *)
  let with_isa = "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_1\",\"isa\":\"to_can\"}" in
  let with_passes =
    "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_1\",\"passes\":[\"to_can\"]}"
  in
  let keys = [ key_of base; key_of with_isa; key_of with_passes ] in
  Alcotest.(check int) "absent/isa/passes all distinct" 3
    (List.length (List.sort_uniq compare keys));
  (* two requests differing only in the target never share a key *)
  Alcotest.(check bool) "distinct targets get distinct keys" false
    (key_of "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_1\",\"isa\":\"cnot\"}"
    = key_of "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_1\",\"isa\":\"cz\"}");
  (* even a typed-wrong value keys distinctly while it rides to the
     engine's validator *)
  Alcotest.(check bool) "non-string isa still keys" true
    (key_of "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_1\",\"isa\":42}" <> key_of base)

(* --------------------------------------------------- serve negative paths *)

let test_serve_paths () =
  let eng = Serve.Engine.create ~workers:1 ~seed:7L () in
  let run line =
    Serve.Json.to_string
      (Serve.Engine.exec_once eng (Serve.Protocol.parse_line line))
  in
  let ok = run "{\"v\":1,\"id\":1,\"op\":\"compile\",\"bench\":\"alu_1\",\"isa\":\"cnot\"}" in
  Alcotest.(check bool) "valid isa answers ok" true (contains_sub ok "\"ok\":true");
  Alcotest.(check bool) "response names the target" true
    (contains_sub ok "\"isa\":\"cnot\"");
  List.iter
    (fun (what, line) ->
      let resp = run line in
      Alcotest.(check bool) (what ^ " rejected") true
        (contains_sub resp "\"ok\":false");
      Alcotest.(check bool) (what ^ " is bad_request") true
        (contains_sub resp "bad_request");
      Alcotest.(check bool) (what ^ " typed at compiler.isa") true
        (contains_sub resp "compiler.isa");
      Alcotest.(check bool) (what ^ " names a known target") true
        (contains_sub resp "sqisw"))
    [
      ("unknown name", "{\"v\":1,\"id\":2,\"op\":\"compile\",\"bench\":\"alu_1\",\"isa\":\"bogus\"}");
      ("non-string", "{\"v\":1,\"id\":3,\"op\":\"compile\",\"bench\":\"alu_1\",\"isa\":42}");
    ];
  (* legacy requests still carry no isa field at all *)
  let legacy = run "{\"v\":1,\"id\":4,\"op\":\"compile\",\"bench\":\"alu_1\"}" in
  Alcotest.(check bool) "legacy response has no isa member" false
    (contains_sub legacy "\"isa\"");
  Serve.Engine.drain eng

let () =
  Alcotest.run "isa"
    [
      ( "matrix",
        [
          Alcotest.test_case "all benches x all targets equivalent" `Slow test_matrix;
          Alcotest.test_case "facade threads ?isa" `Slow test_facade;
        ] );
      ( "synthesis",
        [
          Alcotest.test_case "cnot known-class counts" `Quick test_cnot_known_classes;
        ]
        @ List.map (QCheck_alcotest.to_alcotest ~long:false)
            [ prop_synth_roundtrip; prop_cnot_optimal ] );
      ( "serve",
        [
          Alcotest.test_case "fingerprint isa/passes disjoint" `Quick test_fingerprint;
          Alcotest.test_case "negative paths typed" `Quick test_serve_paths;
        ] );
    ]
