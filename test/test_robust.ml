(* Robustness layer: typed errors, budgets, fault injection, retry ladders.

   Covers the adversarial-input contract (the solver/compiler pipeline
   always returns Solved/Degraded/Failed — never an uncaught exception) and
   asserts that injected faults actually drive every recovery branch:
   retry (EA + ND ladders), fallback (hierarchical resynthesis), degraded
   outcomes, hard failure, and budget exhaustion. *)

open Numerics

let disarm () = Robust.Fault.configure None

(* every fault test must leave the process disarmed for its neighbours *)
let with_faults spec f =
  Robust.Fault.configure (Some spec);
  Fun.protect ~finally:disarm f

let xy = Microarch.Coupling.xy ~g:1.0

(* a Weyl chamber point whose optimal-time plan uses an EA subscheme under
   the XY coupling, so the retry ladder (not the sinc search) is exercised *)
let ea_coords =
  let candidates =
    [ (0.5, 0.3, 0.1); (0.7, 0.2, 0.1); (0.6, 0.5, 0.4); (0.3, 0.2, 0.1);
      (0.75, 0.4, 0.0) ]
  in
  let is_ea (x, y, z) =
    let c = Weyl.Coords.make x y z in
    match (Microarch.Tau.plan xy c).Microarch.Tau.subscheme with
    | Microarch.Tau.EA_same | Microarch.Tau.EA_opposite -> true
    | Microarch.Tau.ND -> false
  in
  match List.find_opt is_ea candidates with
  | Some (x, y, z) -> Weyl.Coords.make x y z
  | None -> Alcotest.fail "no EA-subscheme candidate coords under XY coupling"

let cnot_coords = Weyl.Coords.make (Float.pi /. 4.0) 0.0 0.0

let outcome_kind o = Robust.Outcome.kind o

(* tiny substring helper so the tests need no extra string library *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------- err/core *)

let test_err_taxonomy () =
  let e =
    Robust.Err.Non_convergence
      { stage = "solver.ea"; target = Some (0.1, 0.2, 0.3); iterations = 42; residual = 1e-3 }
  in
  Alcotest.(check string) "stage" "solver.ea" (Robust.Err.stage e);
  Alcotest.(check string) "kind" "non_convergence" (Robust.Err.kind e);
  Alcotest.(check int) "exit code" 4 (Robust.Err.exit_code e);
  let s = Robust.Err.to_string e in
  Alcotest.(check bool) "message mentions stage" true
    (String.length s > 0 && contains s "solver.ea")

let test_counters () =
  Robust.Counters.reset ();
  Robust.Counters.incr ~stage:"t" "ok";
  Robust.Counters.incr ~stage:"t" "ok";
  Robust.Counters.add ~stage:"t" "retry" 3;
  Alcotest.(check int) "incr" 2 (Robust.Counters.get ~stage:"t" "ok");
  Alcotest.(check int) "add" 3 (Robust.Counters.get ~stage:"t" "retry");
  let json = Robust.Counters.to_json () in
  Alcotest.(check bool) "json has stage" true (contains json "\"t\"");
  Robust.Counters.reset ();
  Alcotest.(check int) "reset" 0 (Robust.Counters.get ~stage:"t" "ok")

let test_budget () =
  let b = Robust.Budget.make ~max_iterations:10 ~max_seconds:1e9 () in
  Robust.Budget.spend b 5;
  Alcotest.(check int) "iterations" 5 (Robust.Budget.iterations b);
  Alcotest.(check bool) "not exceeded" false (Robust.Budget.exceeded b);
  Robust.Budget.spend b 6;
  Alcotest.(check bool) "exceeded" true (Robust.Budget.exceeded b);
  match Robust.Budget.check b ~stage:"s" ~residual:0.5 with
  | Error (Robust.Err.Budget_exceeded { stage; iterations; residual; _ }) ->
    Alcotest.(check string) "stage" "s" stage;
    Alcotest.(check int) "spent" 11 iterations;
    Alcotest.(check (float 0.0)) "residual" 0.5 residual
  | _ -> Alcotest.fail "expected Budget_exceeded"

let test_outcome () =
  let open Robust.Outcome in
  Alcotest.(check string) "ok kind" "ok" (kind (Solved 1));
  let d = Degraded (2, { residual = 1e-4; retries = 1; note = "n" }) in
  Alcotest.(check string) "degraded kind" "degraded" (kind d);
  Alcotest.(check bool) "degraded is ok" true (is_ok d);
  (match to_result d with
  | Ok 2 -> ()
  | _ -> Alcotest.fail "degraded maps to Ok");
  let f =
    Failed (Robust.Err.Nan_detected { stage = "s"; site = "x" })
  in
  Alcotest.(check string) "failed kind" "failed" (kind f);
  Alcotest.(check bool) "failed not ok" false (is_ok f);
  Alcotest.(check (option int)) "value" None (value f)

let test_fault_spec () =
  with_faults "ea_noconv:2,ham_perturb:2:0.05" (fun () ->
      Alcotest.(check bool) "enabled" true (Robust.Fault.enabled ());
      Alcotest.(check bool) "fire 1" true (Robust.Fault.fire "ea_noconv");
      Alcotest.(check bool) "fire 2" true (Robust.Fault.fire "ea_noconv");
      Alcotest.(check bool) "limit reached" false (Robust.Fault.fire "ea_noconv");
      Alcotest.(check bool) "unarmed site" false (Robust.Fault.fire "expm_nan");
      Alcotest.(check (float 1e-12)) "param" 0.05
        (Robust.Fault.param "ham_perturb" ~default:1.0);
      Alcotest.(check (float 1e-12)) "param default" 7.0
        (Robust.Fault.param "ea_noconv" ~default:7.0);
      Alcotest.(check int) "hits" 2 (List.assoc "ea_noconv" (Robust.Fault.hits ())));
  Alcotest.(check bool) "disarmed" false (Robust.Fault.enabled ())

let test_fault_strict_parse () =
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  (* a typo'd spec must fail fast at configure time, naming the entry and
     listing the documented sites — not silently arm nothing *)
  let expect_invalid spec frag =
    match Robust.Fault.configure (Some spec) with
    | () -> Alcotest.failf "spec %S accepted" spec
    | exception Invalid_argument msg ->
      Alcotest.(check bool) (Printf.sprintf "%S names fault: %s" spec frag) true
        (contains msg frag);
      Alcotest.(check bool)
        (Printf.sprintf "%S lists known sites" spec)
        true
        (contains msg "known sites" && contains msg "worker_crash")
  in
  expect_invalid "no_such_site:1" "unknown site";
  expect_invalid "ea_noconv:abc" "not an integer";
  expect_invalid "ea_noconv:1:xyz" "not a number";
  expect_invalid "ea_noconv:1:0.5:extra" "too many";
  Alcotest.(check bool) "nothing armed after failures" false (Robust.Fault.enabled ());
  (* seeded probability draws replay exactly *)
  let draws () =
    Robust.Fault.configure ~seed:42 (Some "frame_drop:0:0.5");
    let d = List.init 64 (fun _ -> Robust.Fault.fire_p "frame_drop") in
    disarm ();
    d
  in
  let a = draws () and b = draws () in
  Alcotest.(check bool) "seeded fire_p replays" true (a = b);
  Alcotest.(check bool) "p=0.5 mixes draws" true (List.mem true a && List.mem false a);
  (* fire_p honors the count limit like fire does *)
  Robust.Fault.configure (Some "worker_crash:2");
  Alcotest.(check (list bool)) "fire_p stops at the limit" [ true; true; false ]
    (List.init 3 (fun _ -> Robust.Fault.fire_p "worker_crash"));
  disarm ()

(* ---------------------------------------------------------------- qasm *)

let test_qasm_located_errors () =
  let expect_err src check =
    match Qasm.parse src with
    | Ok _ -> Alcotest.fail "expected parse error"
    | Error e -> check e
  in
  expect_err "REQASM 1.0;\nqreg q[2];\nfrobnicate q[0];\n" (fun e ->
      Alcotest.(check int) "line" 3 e.Qasm.line;
      Alcotest.(check string) "token" "frobnicate" e.Qasm.token;
      Alcotest.(check int) "column" 1 e.Qasm.column);
  expect_err "REQASM 1.0;\nqreg q[2];\nrx(abc) q[0];\n" (fun e ->
      Alcotest.(check int) "line" 3 e.Qasm.line;
      Alcotest.(check string) "token" "abc" e.Qasm.token;
      Alcotest.(check int) "column" 4 e.Qasm.column);
  expect_err "REQASM 1.0;\nqreg q[2];\ncx q[0],bad;\n" (fun e ->
      Alcotest.(check int) "line" 3 e.Qasm.line;
      Alcotest.(check string) "token" "bad" e.Qasm.token;
      Alcotest.(check int) "column" 9 e.Qasm.column);
  expect_err "REQASM 1.0;\ncx q[0],q[1];\n" (fun e ->
      Alcotest.(check string) "missing qreg" "missing qreg declaration" e.Qasm.message);
  expect_err "REQASM 1.0;\nqreg q[2];\ncx q[0]\n" (fun e ->
      Alcotest.(check int) "line" 3 e.Qasm.line);
  (* legacy API still raises Failure with the rendered location *)
  (match Qasm.of_string "REQASM 1.0;\nqreg q[2];\nwat q[0];\n" with
  | exception Failure msg ->
    Alcotest.(check bool) "legacy message located" true (contains msg "line 3")
  | _ -> Alcotest.fail "of_string should raise Failure")

let test_qasm_roundtrip () =
  let c =
    Circuit.create 3
      [ Gate.h 0; Gate.cx 0 1; Gate.can 1 2 0.3 0.2 0.1; Gate.rz 2 0.7 ]
  in
  match Qasm.parse (Qasm.to_string c) with
  | Error e -> Alcotest.fail (Qasm.parse_error_to_string e)
  | Ok c' ->
    Alcotest.(check int) "qubits" c.Circuit.n c'.Circuit.n;
    Alcotest.(check int) "gates" (List.length c.Circuit.gates)
      (List.length c'.Circuit.gates)

(* ------------------------------------------------------------ numerics *)

let random_herm rng n =
  let a = Mat.init n n (fun _ _ -> Cx.mk (Rng.gaussian rng) (Rng.gaussian rng)) in
  Mat.rsmul 0.5 (Mat.add a (Mat.dagger a))

let test_jacobi_near_degenerate () =
  (* two eigenvalues split by 1e-13: the sweep cap must not be hit and the
     returned spectrum must still match to high accuracy *)
  let rng = Rng.create 5L in
  let _, q = Eig.hermitian (random_herm rng 4) in
  let w_true = [| 1.0; 1.0 +. 1e-13; 2.0; 3.0 |] in
  let d = Mat.init 4 4 (fun i j -> if i = j then Cx.of_float w_true.(i) else Cx.zero) in
  let m = Mat.mul3 q d (Mat.dagger q) in
  let a = Mat.create 4 4 and v = Mat.create 4 4 and w = Array.make 4 0.0 in
  Mat.copy_into ~dst:a m;
  match Eig.jacobi_into_r ~a ~v ~w () with
  | Error e -> Alcotest.fail (Robust.Err.to_string e)
  | Ok residual ->
    Alcotest.(check bool) "tiny residual" true (residual < 1e-10);
    Array.sort compare w;
    Array.iteri
      (fun i expected ->
        Alcotest.(check (float 1e-9)) (Printf.sprintf "eigenvalue %d" i) expected w.(i))
      w_true

let test_jacobi_stall_fault () =
  with_faults "jacobi_stall:1" (fun () ->
      let rng = Rng.create 11L in
      let m = random_herm rng 8 in
      let a = Mat.create 8 8 and v = Mat.create 8 8 and w = Array.make 8 0.0 in
      Mat.copy_into ~dst:a m;
      match Eig.jacobi_into_r ~a ~v ~w () with
      | Error (Robust.Err.Non_convergence { stage; residual; _ }) ->
        Alcotest.(check string) "stage" "eig.jacobi" stage;
        Alcotest.(check bool) "positive residual" true (residual > 0.0)
      | Error e -> Alcotest.fail ("unexpected error: " ^ Robust.Err.to_string e)
      | Ok r -> Alcotest.fail (Printf.sprintf "stalled jacobi converged (r=%.2e)" r))

let test_nan_faults () =
  with_faults "mul_nan:1,expm_nan:1" (fun () ->
      let rng = Rng.create 3L in
      let a = random_herm rng 4 and b = random_herm rng 4 in
      let dst = Mat.create 4 4 in
      Mat.mul_into ~dst a b;
      Alcotest.(check bool) "mul poisoned" true (Mat.has_nan dst);
      let ws = Expm.make_ws 4 in
      (match Expm.herm_expi_into_r ws ~dst a ~t:0.3 with
      | Error (Robust.Err.Nan_detected { stage; _ }) ->
        Alcotest.(check string) "stage" "expm" stage
      | Error e -> Alcotest.fail ("unexpected error: " ^ Robust.Err.to_string e)
      | Ok () -> Alcotest.fail "expm NaN not detected"));
  (* disarmed: the same calls are clean *)
  let rng = Rng.create 3L in
  let a = random_herm rng 4 and b = random_herm rng 4 in
  let dst = Mat.create 4 4 in
  Mat.mul_into ~dst a b;
  Alcotest.(check bool) "clean mul" false (Mat.has_nan dst)

(* ------------------------------------------------------------- solver *)

let test_adversarial_inputs () =
  (* near-zero coupling: typed Invalid_hamiltonian, no exception *)
  let weak = Microarch.Coupling.make 1e-12 1e-13 0.0 in
  (match Microarch.Genashn.solve_coords_r weak cnot_coords with
  | Robust.Outcome.Failed (Robust.Err.Invalid_hamiltonian _) -> ()
  | o -> Alcotest.fail ("weak coupling: expected Invalid_hamiltonian, got " ^ outcome_kind o));
  (* NaN-poisoned target unitary: typed Nan_detected *)
  let nan_target = Mat.init 4 4 (fun i j -> if i = j then Cx.of_float Float.nan else Cx.zero) in
  (match Microarch.Genashn.solve_r xy nan_target with
  | Robust.Outcome.Failed (Robust.Err.Nan_detected _) -> ()
  | o -> Alcotest.fail ("nan target: expected Nan_detected, got " ^ outcome_kind o));
  (* near-identity target: any structured outcome is fine, exceptions are not *)
  let near_id = Weyl.Coords.make 1e-8 0.0 0.0 in
  let o = Microarch.Genashn.solve_coords_r xy near_id in
  Alcotest.(check bool) "near-identity structured" true
    (List.mem (outcome_kind o) [ "ok"; "degraded"; "failed" ]);
  (* extreme anisotropy *)
  let aniso = Microarch.Coupling.make 1.0 1e-6 1e-7 in
  let o = Microarch.Genashn.solve_coords_r aniso cnot_coords in
  Alcotest.(check bool) "anisotropic structured" true
    (List.mem (outcome_kind o) [ "ok"; "degraded"; "failed" ])

let test_ea_retry_recovery () =
  Robust.Counters.reset ();
  with_faults "ea_noconv:1" (fun () ->
      match Microarch.Genashn.solve_coords_r xy ea_coords with
      | Robust.Outcome.Degraded (p, i) ->
        Alcotest.(check bool) "retried" true (i.Robust.Outcome.retries >= 1);
        Alcotest.(check bool) "pulse is finite" true (Float.is_finite p.Microarch.Genashn.tau);
        Alcotest.(check bool) "retry counted" true
          (Robust.Counters.get ~stage:"solver.ea" "retry" >= 1);
        Alcotest.(check int) "fault consumed" 1
          (List.assoc "ea_noconv" (Robust.Fault.hits ()))
      | o -> Alcotest.fail ("expected Degraded recovery, got " ^ outcome_kind o))

let test_ea_ladder_exhaustion () =
  Robust.Counters.reset ();
  with_faults "ea_noconv:4" (fun () ->
      match Microarch.Genashn.solve_coords_r xy ea_coords with
      | Robust.Outcome.Failed (Robust.Err.Non_convergence { stage; _ }) ->
        Alcotest.(check string) "stage" "solver.ea" stage;
        Alcotest.(check bool) "failed counted" true
          (Robust.Counters.get ~stage:"solver.ea" "failed" >= 1)
      | o -> Alcotest.fail ("expected ladder exhaustion, got " ^ outcome_kind o))

let test_nd_retry () =
  Robust.Counters.reset ();
  with_faults "nd_noconv:1" (fun () ->
      match Microarch.Genashn.solve_coords_r xy cnot_coords with
      | Robust.Outcome.Solved _ | Robust.Outcome.Degraded _ ->
        Alcotest.(check bool) "nd retry counted" true
          (Robust.Counters.get ~stage:"solver.nd" "retry" >= 1)
      | Robust.Outcome.Failed e -> Alcotest.fail (Robust.Err.to_string e))

let test_ham_perturb () =
  with_faults "ham_perturb:1:0.05" (fun () ->
      let o = Microarch.Genashn.solve_coords_r xy ea_coords in
      Alcotest.(check bool) "structured outcome" true
        (List.mem (outcome_kind o) [ "ok"; "degraded"; "failed" ]);
      Alcotest.(check bool) "perturbation fired" true
        (List.assoc "ham_perturb" (Robust.Fault.hits ()) >= 1))

let test_budget_exceeded_solver () =
  Robust.Counters.reset ();
  let budget = Robust.Budget.make ~max_seconds:0.0 () in
  match Microarch.Genashn.solve_coords_r ~budget xy ea_coords with
  | Robust.Outcome.Failed (Robust.Err.Budget_exceeded { stage; _ }) ->
    Alcotest.(check string) "stage" "solver.ea" stage;
    Alcotest.(check bool) "budget counter" true
      (Robust.Counters.get ~stage:"solver.ea" "budget_exceeded" >= 1)
  | o -> Alcotest.fail ("expected Budget_exceeded, got " ^ outcome_kind o)

let test_solver_baseline_unchanged () =
  (* with no faults armed the robust entry point must agree exactly with
     the legacy one on a clean solve *)
  disarm ();
  match (Microarch.Genashn.solve_coords xy cnot_coords,
         Microarch.Genashn.solve_coords_r xy cnot_coords) with
  | Ok p, Robust.Outcome.Solved p' ->
    Alcotest.(check (float 0.0)) "tau" p.Microarch.Genashn.tau p'.Microarch.Genashn.tau;
    Alcotest.(check (float 0.0)) "x1" p.Microarch.Genashn.drive_x1 p'.Microarch.Genashn.drive_x1;
    Alcotest.(check (float 0.0)) "x2" p.Microarch.Genashn.drive_x2 p'.Microarch.Genashn.drive_x2;
    Alcotest.(check (float 0.0)) "delta" p.Microarch.Genashn.delta p'.Microarch.Genashn.delta
  | Error e, _ -> Alcotest.fail e
  | _, o -> Alcotest.fail ("robust solve not Solved: " ^ outcome_kind o)

(* ------------------------------------------------------------ compiler *)

let small_circuit () =
  (* enough fused 2Q density that hierarchical probes run *)
  let b = List.hd (Benchmarks.Suite.suite ()) in
  b.Benchmarks.Suite.program

let test_hier_fallback () =
  Robust.Counters.reset ();
  with_faults "hier_fail:0" (fun () ->
      let rng = Rng.create 1L in
      match Compiler.Pipeline.compile_r ~mode:Compiler.Pipeline.Full rng (small_circuit ()) with
      | Error e -> Alcotest.fail (Robust.Err.to_string e)
      | Ok out ->
        Alcotest.(check bool) "circuit non-empty" true
          (out.Compiler.Pipeline.circuit.Circuit.gates <> []);
        Alcotest.(check bool) "hier_fail fired" true
          (List.assoc "hier_fail" (Robust.Fault.hits ()) >= 1);
        Alcotest.(check bool) "fallback counted" true
          (Robust.Counters.get ~stage:"compiler.hier" "fallback" >= 1))

let test_pipeline_under_faults () =
  (* all sites armed at once: compilation plus per-gate pulse synthesis must
     still only produce structured outcomes *)
  Robust.Counters.reset ();
  with_faults "expm_nan:2,jacobi_stall:2,ea_noconv:1,nd_noconv:1,ham_perturb:1:0.05,hier_fail:3"
    (fun () ->
      let rng = Rng.create 2L in
      match Compiler.Pipeline.compile_r ~mode:Compiler.Pipeline.Full rng (small_circuit ()) with
      | Error e ->
        (* a typed failure is an acceptable structured outcome *)
        Alcotest.(check bool) "typed" true (String.length (Robust.Err.to_string e) > 0)
      | Ok out ->
        let outcomes = Reqisc.pulse_outcomes xy out.Compiler.Pipeline.circuit in
        List.iter
          (fun (o : Reqisc.gate_outcome) ->
            Alcotest.(check bool) "structured per-gate outcome" true
              (List.mem (Robust.Outcome.kind o.outcome) [ "ok"; "degraded"; "failed" ]))
          outcomes)

let test_pulses_r_never_aborts () =
  disarm ();
  (* a circuit whose second gate is unsolvable junk must still yield
     verdicts for every 2Q gate *)
  let good = Gate.cx 0 1 in
  let bad =
    Gate.make "junk" [| 0; 1 |]
      (Mat.init 4 4 (fun _ _ -> Cx.of_float Float.nan))
  in
  let c = Circuit.create 2 [ good; bad; Gate.cz 0 1 ] in
  let outcomes = Reqisc.pulse_outcomes xy c in
  Alcotest.(check int) "three verdicts" 3 (List.length outcomes);
  let kinds = List.map (fun (o : Reqisc.gate_outcome) -> Robust.Outcome.kind o.outcome) outcomes in
  Alcotest.(check bool) "good solved" true (List.nth kinds 0 = "ok");
  Alcotest.(check string) "bad failed" "failed" (List.nth kinds 1);
  Alcotest.(check bool) "sweep continued" true (List.nth kinds 2 = "ok")

let () =
  disarm ();
  Alcotest.run "robust"
    [
      ( "core",
        [
          Alcotest.test_case "err taxonomy" `Quick test_err_taxonomy;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "budget" `Quick test_budget;
          Alcotest.test_case "outcome" `Quick test_outcome;
          Alcotest.test_case "fault spec" `Quick test_fault_spec;
          Alcotest.test_case "fault strict parse" `Quick test_fault_strict_parse;
        ] );
      ( "qasm",
        [
          Alcotest.test_case "located errors" `Quick test_qasm_located_errors;
          Alcotest.test_case "roundtrip" `Quick test_qasm_roundtrip;
        ] );
      ( "numerics",
        [
          Alcotest.test_case "jacobi near-degenerate" `Quick test_jacobi_near_degenerate;
          Alcotest.test_case "jacobi stall fault" `Quick test_jacobi_stall_fault;
          Alcotest.test_case "nan faults" `Quick test_nan_faults;
        ] );
      ( "solver",
        [
          Alcotest.test_case "adversarial inputs" `Quick test_adversarial_inputs;
          Alcotest.test_case "ea retry recovery" `Quick test_ea_retry_recovery;
          Alcotest.test_case "ea ladder exhaustion" `Quick test_ea_ladder_exhaustion;
          Alcotest.test_case "nd retry" `Quick test_nd_retry;
          Alcotest.test_case "hamiltonian perturbation" `Quick test_ham_perturb;
          Alcotest.test_case "budget exceeded" `Quick test_budget_exceeded_solver;
          Alcotest.test_case "baseline unchanged" `Quick test_solver_baseline_unchanged;
        ] );
      ( "compiler",
        [
          Alcotest.test_case "hier fallback" `Quick test_hier_fallback;
          Alcotest.test_case "pipeline under faults" `Quick test_pipeline_under_faults;
          Alcotest.test_case "pulses_r never aborts" `Quick test_pulses_r_never_aborts;
        ] );
    ]
