(* Socket transport: the network front-end must be observationally
   equivalent to the stdio server (differential test over the same
   request stream), survive concurrent pipelined clients and mid-stream
   disconnects with an exact id bijection, and enforce the connection
   lifecycle guards — overload refusal, idle timeout, frame cap — as
   typed JSON errors followed by a graceful drain. *)

module J = Serve.Json
module T = Serve.Transport
module C = Serve.Client

let () = Robust.Fault.configure None

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let rec json_eq a b =
  match (a, b) with
  | J.Num x, J.Num y -> Int64.bits_of_float x = Int64.bits_of_float y
  | J.Arr xs, J.Arr ys -> List.length xs = List.length ys && List.for_all2 json_eq xs ys
  | J.Obj xs, J.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k, v) (k', v') -> k = k' && json_eq v v') xs ys
  | _ -> a = b

let net_config ?(workers = 2) ?(max_connections = 64) ?(idle_timeout = 300.0)
    ?(max_line_bytes = Serve.Protocol.max_line_bytes)
    ?(max_queue_depth = T.default_config.T.max_queue_depth) () =
  {
    T.server = { Serve.Server.default_config with Serve.Server.workers };
    max_connections;
    idle_timeout;
    max_line_bytes;
    max_write_buffer = T.default_config.T.max_write_buffer;
    max_queue_depth;
  }

(* ------------------------------------------------------------- harness *)

let temp_unix_addr () =
  let path = Filename.temp_file "rqnet" ".sock" in
  Sys.remove path;
  T.Unix_path path

let shutdown_body = J.Obj [ ("op", J.Str "shutdown") ]

(* run [Transport.serve] in a thread, hand [f] the actual bound address
   (kernel-assigned port for tcp:...:0), and require f to have triggered
   the drain (shutdown request) before returning *)
let with_server ?(config = net_config ()) listen f =
  let ready = Atomic.make false in
  let actual = ref listen in
  let result = ref (Error "server did not return") in
  let th =
    Thread.create
      (fun () ->
        result :=
          T.serve ~config
            ~ready:(fun a ->
              actual := a;
              Atomic.set ready true)
            listen)
      ()
  in
  let rec wait n =
    if not (Atomic.get ready) then
      if n > 2000 then Alcotest.fail "server did not become ready"
      else begin
        Thread.delay 0.005;
        wait (n + 1)
      end
  in
  wait 0;
  let fin =
    try f !actual
    with e ->
      (* last-ditch drain so the join below cannot hang the suite *)
      ignore (C.rpc ~retries:0 !actual shutdown_body);
      raise e
  in
  Thread.join th;
  match !result with
  | Error e -> Alcotest.failf "server failed: %s" e
  | Ok summary -> (summary, fin)

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (C.error_to_string e)

(* ---------------------------------------------------------------- addr *)

let test_addr_parsing () =
  (match T.parse_addr "tcp:127.0.0.1:8080" with
  | Ok (T.Tcp ("127.0.0.1", 8080)) -> ()
  | _ -> Alcotest.fail "tcp:127.0.0.1:8080");
  (match T.parse_addr "tcp:localhost:0" with
  | Ok (T.Tcp ("localhost", 0)) -> ()
  | _ -> Alcotest.fail "tcp:localhost:0");
  (match T.parse_addr "unix:/tmp/x.sock" with
  | Ok (T.Unix_path "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix:/tmp/x.sock");
  List.iter
    (fun s ->
      match T.parse_addr s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad address %S" s)
    [ ""; "bogus"; "tcp:"; "tcp:localhost"; "tcp:host:70000"; "tcp::123"; "unix:"; "http:x:1" ];
  (* to_string round trips through parse *)
  List.iter
    (fun a ->
      match T.parse_addr (T.addr_to_string a) with
      | Ok a' when a = a' -> ()
      | _ -> Alcotest.failf "addr %s did not round trip" (T.addr_to_string a))
    [ T.Tcp ("127.0.0.1", 9999); T.Unix_path "/tmp/y.sock" ]

(* ---------------------------------------------------------- happy path *)

let socket_session addr =
  let c = ok_or_fail "connect" (C.connect addr) in
  let stats = ok_or_fail "stats" (C.request c (J.Obj [ ("op", J.Str "stats") ])) in
  Alcotest.(check (option bool)) "stats ok" (Some true) (J.mem_bool "ok" stats);
  let pulses =
    ok_or_fail "pulses" (C.request c (J.Obj [ ("op", J.Str "pulses"); ("gate", J.Str "cnot") ]))
  in
  Alcotest.(check bool) "pulse payload" true (contains (J.to_string pulses) "\"tau\"");
  Alcotest.(check (option int)) "response carries v" (Some Serve.Protocol.version)
    (J.mem_int "v" pulses);
  let bye = ok_or_fail "shutdown" (C.request c shutdown_body) in
  Alcotest.(check (option bool)) "shutdown ok" (Some true) (J.mem_bool "ok" bye);
  C.close c

let check_happy_summary (summary : T.summary) =
  Alcotest.(check int) "served" 3 summary.T.served;
  Alcotest.(check int) "errors" 0 summary.T.errors;
  Alcotest.(check int) "connections" 1 summary.T.connections;
  Alcotest.(check int) "refused" 0 summary.T.refused

let test_unix_happy_path () =
  let summary, () = with_server (temp_unix_addr ()) socket_session in
  check_happy_summary summary

let test_tcp_happy_path () =
  (* port 0: the kernel picks; [ready] must report the real port *)
  let summary, () =
    with_server (T.Tcp ("127.0.0.1", 0)) (fun actual ->
        (match actual with
        | T.Tcp ("127.0.0.1", p) when p > 0 -> ()
        | a -> Alcotest.failf "ready reported %s" (T.addr_to_string a));
        socket_session actual)
  in
  check_happy_summary summary

(* --------------------------------------------------------- differential *)

(* identical request stream through the in-process stdio server and
   through a loopback socket: the response SETS must match keyed by "id"
   (completion order may differ). Only op=stats results are volatile
   (uptime, queue depth, live counters) — normalize them to null,
   recursively so batch items are covered too. *)

let rec normalize j =
  match j with
  | J.Obj ms ->
    let is_stats = List.assoc_opt "op" ms = Some (J.Str "stats") in
    J.Obj
      (List.map
         (fun (k, v) -> if is_stats && k = "result" then (k, J.Null) else (k, normalize v))
         ms)
  | J.Arr xs -> J.Arr (List.map normalize xs)
  | _ -> j

let differential_stream =
  [
    "{\"v\":1,\"id\":1,\"op\":\"stats\"}";
    "{\"v\":1,\"id\":2,\"op\":\"pulses\",\"gate\":\"cnot\"}";
    "{\"v\":1,\"id\":3,\"op\":\"pulses\",\"coords\":[0.5,0.3,0.1]}";
    "this is not json";
    "{\"v\":1,\"id\":4,\"op\":\"nope\"}";
    "{\"id\":5,\"op\":\"stats\"}";
    "{\"v\":1,\"id\":6,\"op\":\"batch\",\"requests\":[{\"op\":\"pulses\",\"gate\":\"cz\"},{\"op\":\"stats\"}]}";
    "{\"v\":1,\"id\":7,\"op\":\"compile\",\"bench\":\"qaoa_8\",\"mode\":\"eff\"}";
    "{\"v\":1,\"id\":8,\"op\":\"pulses\",\"gate\":\"bogus\"}";
  ]

let run_stdio_server lines =
  let req = Filename.temp_file "rqnet" ".in" in
  let resp = Filename.temp_file "rqnet" ".out" in
  let oc = open_out req in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  close_out oc;
  let ic = open_in req in
  let out = open_out resp in
  let summary =
    Serve.Server.run
      ~config:{ Serve.Server.default_config with Serve.Server.workers = 2 }
      ic out
  in
  close_in ic;
  close_out out;
  let acc = ref [] in
  let ic = open_in resp in
  (try
     while true do
       acc := input_line ic :: !acc
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove req;
  Sys.remove resp;
  match summary with
  | Error e -> Alcotest.failf "stdio server failed: %s" e
  | Ok _ -> List.rev !acc

let id_key j = J.to_string (Option.value ~default:J.Null (J.member "id" j))

let keyed lines =
  List.map
    (fun l ->
      match J.parse l with
      | Error e -> Alcotest.failf "response not JSON (%s): %s" e l
      | Ok j -> (id_key j, normalize j))
    lines

let test_differential () =
  let stdio = keyed (run_stdio_server differential_stream) in
  let socket_lines =
    let _, lines =
      with_server (temp_unix_addr ()) (fun addr ->
          let c = ok_or_fail "connect" (C.connect addr) in
          List.iter
            (fun l -> ok_or_fail "send_line" (C.send_line c l))
            differential_stream;
          let got =
            List.map (fun _ -> ok_or_fail "recv" (C.recv c)) differential_stream
          in
          ignore (ok_or_fail "shutdown" (C.request c shutdown_body));
          C.close c;
          List.map J.to_string got)
    in
    lines
  in
  let socket = keyed socket_lines in
  Alcotest.(check int) "same cardinality" (List.length stdio) (List.length socket);
  List.iter
    (fun (k, sj) ->
      match List.assoc_opt k socket with
      | None -> Alcotest.failf "socket run missing response id %s" k
      | Some nj ->
        if not (json_eq sj nj) then
          Alcotest.failf "responses for id %s differ\nstdio:  %s\nsocket: %s" k
            (J.to_string sj) (J.to_string nj))
    stdio

(* --------------------------------------------------------------- stress *)

let stress_clients = 8
let stress_requests = 64

let stress_worker addr tid =
  let c = ok_or_fail "connect" (C.connect addr) in
  (* pipeline everything first ... *)
  let ids =
    List.init stress_requests (fun j ->
        let id = J.Str (Printf.sprintf "c%d-%d" tid j) in
        let body =
          if j mod 8 = 0 then
            J.Obj [ ("id", id); ("op", J.Str "pulses"); ("gate", J.Str "cnot") ]
          else J.Obj [ ("id", id); ("op", J.Str "stats") ]
        in
        ok_or_fail "send" (C.send c body))
  in
  (* ... then collect in REVERSE order, forcing the stash to demux
     out-of-order arrivals; recv_id consuming each id exactly once is the
     bijection check *)
  List.iter
    (fun id ->
      let r = ok_or_fail "recv_id" (C.recv_id c id) in
      Alcotest.(check (option bool))
        (Printf.sprintf "ok for %s" (J.to_string id))
        (Some true) (J.mem_bool "ok" r))
    (List.rev ids);
  (* wire-level duplicate probe: the very next line must be the final
     request's response — any stray duplicate would arrive first *)
  let fin = J.Str (Printf.sprintf "c%d-fin" tid) in
  ignore (ok_or_fail "send fin" (C.send c (J.Obj [ ("id", fin); ("op", J.Str "stats") ])));
  let last = ok_or_fail "recv fin" (C.recv c) in
  Alcotest.(check string) "no duplicates on the wire" (J.to_string fin)
    (J.to_string (Option.value ~default:J.Null (J.member "id" last)));
  C.close c

let test_stress () =
  let summary, () =
    with_server (temp_unix_addr ()) (fun addr ->
        (* a rude client: queue work, vanish without reading — the engine
           keeps running and everyone else still gets exact answers *)
        let rude = ok_or_fail "rude connect" (C.connect addr) in
        for _ = 1 to 8 do
          ignore
            (ok_or_fail "rude send"
               (C.send rude (J.Obj [ ("op", J.Str "pulses"); ("gate", J.Str "cz") ])))
        done;
        C.close rude;
        let threads =
          List.init stress_clients (fun tid -> Thread.create (stress_worker addr) tid)
        in
        List.iter Thread.join threads;
        ignore (ok_or_fail "shutdown" (C.rpc addr shutdown_body)))
  in
  (* 8 clients x (64 + 1 final probe) + 8 rude + 1 shutdown, all served *)
  Alcotest.(check int) "served"
    ((stress_clients * (stress_requests + 1)) + 8 + 1)
    summary.T.served;
  Alcotest.(check int) "errors" 0 summary.T.errors;
  Alcotest.(check int) "connections" (stress_clients + 2) summary.T.connections;
  Alcotest.(check int) "refused" 0 summary.T.refused

(* --------------------------------------------------------------- binary *)

let test_binary_happy_path () =
  let summary, () =
    with_server (temp_unix_addr ()) (fun addr ->
        let c = ok_or_fail "connect" (C.connect ~frames:C.Binary addr) in
        let stats = ok_or_fail "stats" (C.request c (J.Obj [ ("op", J.Str "stats") ])) in
        Alcotest.(check (option bool)) "stats ok" (Some true) (J.mem_bool "ok" stats);
        let pulses =
          ok_or_fail "pulses"
            (C.request c (J.Obj [ ("op", J.Str "pulses"); ("gate", J.Str "cnot") ]))
        in
        Alcotest.(check bool) "pulse payload" true
          (contains (J.to_string pulses) "\"tau\"");
        ignore (ok_or_fail "shutdown" (C.request c shutdown_body));
        C.close c)
  in
  check_happy_summary summary

let test_binary_oversize_frame () =
  let config = net_config ~max_line_bytes:1024 () in
  let summary, () =
    with_server ~config (temp_unix_addr ()) (fun addr ->
        let c = ok_or_fail "connect" (C.connect ~frames:C.Binary addr) in
        (* a frame whose declared length is over the cap: one typed
           rejection, the payload is skipped by counting, and the
           connection keeps serving *)
        ok_or_fail "send oversize" (C.send_line c (String.make 5000 'x'));
        (match C.recv c with
        | Ok j ->
          Alcotest.(check (option bool)) "rejected" (Some false) (J.mem_bool "ok" j);
          let s = J.to_string j in
          Alcotest.(check bool) "bad_request" true (contains s "bad_request");
          Alcotest.(check bool) "names the limit" true (contains s "1024-byte")
        | Error e -> Alcotest.failf "recv oversize reply: %s" (C.error_to_string e));
        let again =
          ok_or_fail "still serving" (C.request c (J.Obj [ ("op", J.Str "stats") ]))
        in
        Alcotest.(check (option bool)) "connection survives" (Some true)
          (J.mem_bool "ok" again);
        ignore (ok_or_fail "shutdown" (C.request c shutdown_body));
        C.close c)
  in
  Alcotest.(check int) "the rejection is counted" 1 summary.T.errors

(* raw byte-level driver for the desync test: the client library can only
   emit well-formed frames, and desync is precisely a malformed one *)
let raw_unix_connect = function
  | T.Unix_path p ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX p);
    fd
  | a -> Alcotest.failf "raw connect wants a unix path, got %s" (T.addr_to_string a)

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

let read_to_eof fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
  in
  go ();
  Buffer.contents buf

(* split a byte stream of binary frames into payloads *)
let rec decode_frames s off acc =
  if off >= String.length s then List.rev acc
  else
    match Serve.Frame.decode_header s off with
    | Error e -> Alcotest.failf "response stream desynced at %d: %s" off e
    | Ok n ->
      let payload = String.sub s (off + Serve.Frame.header_bytes) n in
      decode_frames s (off + Serve.Frame.header_bytes + n) (payload :: acc)

let test_binary_desync () =
  let summary, () =
    with_server (temp_unix_addr ()) (fun addr ->
        let fd = raw_unix_connect addr in
        (* one good frame negotiates binary mode; the bad-magic bytes
           after it are unrecoverable — the server must answer a typed
           desync error and stop reading this connection *)
        write_all fd (Serve.Frame.encode "{\"v\":1,\"id\":1,\"op\":\"stats\"}");
        write_all fd "XXXXXXXX";
        (match decode_frames (read_to_eof fd) 0 [] with
        | [ first; second ] ->
          Alcotest.(check bool) "good frame answered" true
            (contains first "\"ok\":true");
          Alcotest.(check bool) "desync is typed" true
            (contains second "\"ok\":false" && contains second "desync")
        | frames -> Alcotest.failf "expected 2 response frames, got %d" (List.length frames));
        Unix.close fd;
        ignore (ok_or_fail "shutdown" (C.rpc addr shutdown_body)))
  in
  Alcotest.(check int) "the desync is counted" 1 summary.T.errors

let test_mixed_frame_clients () =
  (* one JSON-lines client and one binary client interleaved on the same
     server: negotiation is per connection, so neither leaks into the
     other's framing *)
  let summary, () =
    with_server (temp_unix_addr ()) (fun addr ->
        let cj = ok_or_fail "json connect" (C.connect addr) in
        let cb = ok_or_fail "binary connect" (C.connect ~frames:C.Binary addr) in
        for _ = 1 to 4 do
          let rj = ok_or_fail "json stats" (C.request cj (J.Obj [ ("op", J.Str "stats") ])) in
          Alcotest.(check (option bool)) "json ok" (Some true) (J.mem_bool "ok" rj);
          let rb =
            ok_or_fail "binary pulses"
              (C.request cb (J.Obj [ ("op", J.Str "pulses"); ("gate", J.Str "cz") ]))
          in
          Alcotest.(check bool) "binary payload" true
            (contains (J.to_string rb) "\"tau\"")
        done;
        ignore (ok_or_fail "shutdown" (C.request cj shutdown_body));
        C.close cj;
        C.close cb)
  in
  Alcotest.(check int) "both clients served" 9 summary.T.served;
  Alcotest.(check int) "no errors" 0 summary.T.errors;
  Alcotest.(check int) "two connections" 2 summary.T.connections

(* ------------------------------------------------------------ lifecycle *)

let test_overload_refusal () =
  let config = net_config ~max_connections:1 () in
  let summary, () =
    with_server ~config (temp_unix_addr ()) (fun addr ->
        let c1 = ok_or_fail "c1 connect" (C.connect addr) in
        ignore (ok_or_fail "c1 stats" (C.request c1 (J.Obj [ ("op", J.Str "stats") ])));
        (* the slot is held: a second client is answered [overloaded]
           naming the threshold, then closed *)
        let c2 = ok_or_fail "c2 connect" (C.connect addr) in
        (match C.request c2 (J.Obj [ ("op", J.Str "stats") ]) with
        | Error (C.Overloaded msg) ->
          Alcotest.(check bool) "names the threshold" true (contains msg "1")
        | Ok _ -> Alcotest.fail "second client admitted past max_connections"
        | Error e -> Alcotest.failf "expected overloaded, got %s" (C.error_to_string e));
        C.close c2;
        C.close c1;
        (* once the slot frees, the retry ladder gets through *)
        ignore (ok_or_fail "rpc after drain" (C.rpc ~retries:5 addr shutdown_body)))
  in
  Alcotest.(check bool) "refusals counted" true (summary.T.refused >= 1);
  Alcotest.(check int) "no response errors" 0 summary.T.errors

let test_idle_timeout () =
  let config = net_config ~idle_timeout:0.3 () in
  let summary, () =
    with_server ~config (temp_unix_addr ()) (fun addr ->
        let c = ok_or_fail "connect" (C.connect addr) in
        ignore (ok_or_fail "stats" (C.request c (J.Obj [ ("op", J.Str "stats") ])));
        (* go silent: the server answers [timeout] and closes *)
        (match C.recv c with
        | Error (C.Timed_out msg) ->
          Alcotest.(check bool) "timeout names the idle window" true (contains msg "idle")
        | Error C.Disconnected -> Alcotest.fail "closed without the typed timeout line"
        | Error e -> Alcotest.failf "expected timeout, got %s" (C.error_to_string e)
        | Ok j -> Alcotest.failf "unexpected response %s" (J.to_string j));
        ignore (ok_or_fail "shutdown" (C.rpc addr shutdown_body)))
  in
  Alcotest.(check int) "no response errors" 0 summary.T.errors

let test_frame_cap () =
  let config = net_config ~max_line_bytes:1024 () in
  let summary, () =
    with_server ~config (temp_unix_addr ()) (fun addr ->
        let c = ok_or_fail "connect" (C.connect addr) in
        (* one oversized frame: rejected with the limit named, id null,
           and the connection survives for the next request *)
        ok_or_fail "send oversize" (C.send_line c (String.make 5000 'x'));
        (match C.recv c with
        | Ok j ->
          Alcotest.(check (option bool)) "rejected" (Some false) (J.mem_bool "ok" j);
          let s = J.to_string j in
          Alcotest.(check bool) "bad_request" true (contains s "bad_request");
          Alcotest.(check bool) "names the limit" true (contains s "1024-byte");
          Alcotest.(check bool) "id is null" true
            (J.member "id" j = Some J.Null)
        | Error e -> Alcotest.failf "recv oversize reply: %s" (C.error_to_string e));
        let again = ok_or_fail "still serving" (C.request c (J.Obj [ ("op", J.Str "stats") ])) in
        Alcotest.(check (option bool)) "connection survives" (Some true)
          (J.mem_bool "ok" again);
        ignore (ok_or_fail "shutdown" (C.request c shutdown_body));
        C.close c)
  in
  Alcotest.(check int) "the rejection is counted" 1 summary.T.errors

let test_shutdown_drains_queued () =
  (* queue several slow-ish jobs then shut down from the same pipeline:
     everything already accepted must still answer *)
  let summary, () =
    with_server (temp_unix_addr ()) (fun addr ->
        let c = ok_or_fail "connect" (C.connect addr) in
        let ids =
          List.map
            (fun gate ->
              ok_or_fail "send"
                (C.send c (J.Obj [ ("op", J.Str "pulses"); ("gate", J.Str gate) ])))
            [ "cnot"; "iswap"; "swap" ]
        in
        let bye = ok_or_fail "send shutdown" (C.send c shutdown_body) in
        List.iter
          (fun id ->
            let r = ok_or_fail "drain recv" (C.recv_id c id) in
            Alcotest.(check (option bool)) "queued job answered" (Some true)
              (J.mem_bool "ok" r))
          (ids @ [ bye ]);
        C.close c)
  in
  Alcotest.(check int) "all four served" 4 summary.T.served;
  Alcotest.(check int) "errors" 0 summary.T.errors

(* ----------------------------------------------------------- resilience *)

let test_admission_shed () =
  (* one worker, queue depth 1, and a pipelined burst of distinct cold
     solves: the transport must shed the overflow with a typed
     per-request [overloaded] (stage serve.admission) while still
     answering every id — and the connection must stay usable after *)
  let burst = 12 in
  let shed0 = Robust.Counters.get ~stage:"serve.net" "shed" in
  let config = net_config ~workers:1 ~max_queue_depth:1 () in
  let summary, (solved, shed, other) =
    with_server ~config (temp_unix_addr ()) (fun addr ->
        let c = ok_or_fail "connect" (C.connect addr) in
        let ids =
          List.init burst (fun i ->
              (* distinct Weyl-chamber coords: no cache hits, no
                 coalescing, every request is a real solver job *)
              let z = 0.001 +. (0.28 *. float_of_int i /. float_of_int burst) in
              ok_or_fail "send"
                (C.send ~flush:false c
                   (J.Obj
                      [
                        ("op", J.Str "pulses");
                        ("coords", J.Arr [ J.Num 0.45; J.Num 0.3; J.Num z ]);
                      ])))
        in
        ok_or_fail "flush" (C.flush c);
        let solved = ref 0 and shed = ref 0 and other = ref 0 in
        List.iter
          (fun id ->
            let r = ok_or_fail "recv" (C.recv_id c id) in
            match J.mem_bool "ok" r with
            | Some true -> incr solved
            | _ ->
              if contains (J.to_string r) "serve.admission" then incr shed
              else incr other)
          ids;
        (* per-request shed: the same connection keeps serving *)
        let again = ok_or_fail "still serving" (C.request c (J.Obj [ ("op", J.Str "stats") ])) in
        Alcotest.(check (option bool)) "connection survives the sheds" (Some true)
          (J.mem_bool "ok" again);
        ignore (ok_or_fail "shutdown" (C.request c shutdown_body));
        C.close c;
        (!solved, !shed, !other))
  in
  Alcotest.(check int) "every id answered" burst (solved + shed + other);
  Alcotest.(check int) "no non-shed failures" 0 other;
  Alcotest.(check bool) "something was shed" true (shed >= 1);
  Alcotest.(check bool) "something was solved" true (solved >= 1);
  Alcotest.(check int) "sheds counted" shed
    (Robust.Counters.get ~stage:"serve.net" "shed" - shed0);
  (* sheds are refused before the engine: only executed jobs (plus the
     stats and shutdown) appear in the engine-side served tally *)
  Alcotest.(check int) "engine executed only the admitted" (solved + 2) summary.T.served;
  Alcotest.(check int) "no engine-side errors" 0 summary.T.errors

let test_breaker () =
  let shed =
    C.Server_error
      { kind = "overloaded"; stage = "serve.admission"; message = "shed"; id = J.Num 1.0 }
  in
  let b = C.Breaker.create ~threshold:2 ~cooldown:0.05 ~jitter:0.0 () in
  Alcotest.(check string) "starts closed" "closed" (C.Breaker.state b);
  C.Breaker.record b (Error (C.Overloaded "full") : (unit, C.error) result);
  Alcotest.(check string) "one failure stays closed" "closed" (C.Breaker.state b);
  C.Breaker.record b (Error (C.Timed_out "idle") : (unit, C.error) result);
  Alcotest.(check string) "threshold trips" "open" (C.Breaker.state b);
  Alcotest.(check int) "trip counted" 1 (C.Breaker.trips b);
  (match C.Breaker.admit b with
  | Error (C.Circuit_open { retry_after }) ->
    Alcotest.(check bool) "retry_after bounded" true
      (retry_after > 0.0 && retry_after <= 0.06)
  | Ok () -> Alcotest.fail "open breaker admitted a call"
  | Error e -> Alcotest.failf "expected circuit_open, got %s" (C.error_to_string e));
  Thread.delay 0.06;
  (match C.Breaker.admit b with
  | Ok () -> Alcotest.(check string) "cooldown opens a probe" "half_open" (C.Breaker.state b)
  | Error e -> Alcotest.failf "probe refused: %s" (C.error_to_string e));
  (* exactly one probe: concurrent callers keep failing fast *)
  (match C.Breaker.admit b with
  | Error (C.Circuit_open _) -> ()
  | Ok () -> Alcotest.fail "second concurrent probe admitted"
  | Error e -> Alcotest.failf "expected circuit_open, got %s" (C.error_to_string e));
  C.Breaker.record b (Ok () : (unit, C.error) result);
  Alcotest.(check string) "probe success closes" "closed" (C.Breaker.state b);
  (* an admission-control shed is overload-shaped even though the server
     answered: two of them must trip the breaker again *)
  C.Breaker.record b (Error shed : (unit, C.error) result);
  C.Breaker.record b (Error shed : (unit, C.error) result);
  Alcotest.(check string) "server-side sheds trip" "open" (C.Breaker.state b);
  Alcotest.(check int) "second trip counted" 2 (C.Breaker.trips b)

let () =
  Alcotest.run "serve_net"
    [
      ("addr", [ Alcotest.test_case "parsing" `Quick test_addr_parsing ]);
      ( "transport",
        [
          Alcotest.test_case "unix happy path" `Quick test_unix_happy_path;
          Alcotest.test_case "tcp happy path" `Quick test_tcp_happy_path;
          Alcotest.test_case "differential vs stdio" `Quick test_differential;
          Alcotest.test_case "shutdown drains queued" `Quick test_shutdown_drains_queued;
        ] );
      ( "binary",
        [
          Alcotest.test_case "happy path" `Quick test_binary_happy_path;
          Alcotest.test_case "oversize frame" `Quick test_binary_oversize_frame;
          Alcotest.test_case "desync" `Quick test_binary_desync;
          Alcotest.test_case "mixed clients" `Quick test_mixed_frame_clients;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "overload refusal" `Quick test_overload_refusal;
          Alcotest.test_case "idle timeout" `Quick test_idle_timeout;
          Alcotest.test_case "frame cap" `Quick test_frame_cap;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "admission shed" `Quick test_admission_shed;
          Alcotest.test_case "circuit breaker" `Quick test_breaker;
        ] );
      ("stress", [ Alcotest.test_case "8x64 pipelined + disconnect" `Quick test_stress ]);
    ]
