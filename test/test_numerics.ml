(* Tests for the numerics substrate: matrices, eigensolvers, expm, svd,
   root finding, optimization, rng. *)

open Numerics

let check_float ?(tol = 1e-9) msg expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s (expected %.12g, got %.12g)" msg expected actual)
    true
    (Float.abs (expected -. actual) <= tol)

let rng = Rng.create 42L

let random_mat ?(rng = rng) n =
  Mat.init n n (fun _ _ -> Cx.mk (Rng.gaussian rng) (Rng.gaussian rng))

let random_hermitian n =
  let a = random_mat n in
  Mat.rsmul 0.5 (Mat.add a (Mat.dagger a))

let random_unitary n =
  (* Gram-Schmidt on a random matrix gives a Haar-ish unitary; exactness of
     distribution is irrelevant here, unitarity is what we need. *)
  let a = random_mat n in
  let u, _, v = Svd.svd a in
  Mat.mul u (Mat.dagger v)

(* ------------------------------------------------------------------ Mat *)

let test_mat_mul_identity () =
  let m = random_mat 4 in
  Alcotest.(check bool) "m * I = m" true (Mat.equal (Mat.mul m (Mat.identity 4)) m);
  Alcotest.(check bool) "I * m = m" true (Mat.equal (Mat.mul (Mat.identity 4) m) m)

let test_mat_dagger_product () =
  let a = random_mat 3 and b = random_mat 3 in
  let lhs = Mat.dagger (Mat.mul a b) in
  let rhs = Mat.mul (Mat.dagger b) (Mat.dagger a) in
  Alcotest.(check bool) "(ab)† = b†a†" true (Mat.equal lhs rhs)

let test_mat_kron_shape () =
  let a = random_mat 2 and b = random_mat 3 in
  let k = Mat.kron a b in
  Alcotest.(check int) "rows" 6 (Mat.rows k);
  Alcotest.(check int) "cols" 6 (Mat.cols k);
  (* (a⊗b)(c⊗d) = (ac)⊗(bd) *)
  let c = random_mat 2 and d = random_mat 3 in
  let lhs = Mat.mul (Mat.kron a b) (Mat.kron c d) in
  let rhs = Mat.kron (Mat.mul a c) (Mat.mul b d) in
  Alcotest.(check bool) "kron mixed product" true (Mat.equal ~tol:1e-8 lhs rhs)

let test_mat_det_known () =
  let m = Mat.of_real_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  Alcotest.(check bool) "det [[1;2];[3;4]] = -2" true
    (Cx.close (Mat.det m) (Cx.of_float (-2.0)))

let test_mat_det_multiplicative () =
  let a = random_mat 4 and b = random_mat 4 in
  let lhs = Mat.det (Mat.mul a b) in
  let rhs = Cx.( *: ) (Mat.det a) (Mat.det b) in
  Alcotest.(check bool) "det(ab) = det a det b" true (Cx.close ~tol:1e-6 lhs rhs)

let test_mat_inv () =
  let m = random_mat 5 in
  let mi = Mat.inv m in
  Alcotest.(check bool) "m * m^-1 = I" true
    (Mat.equal ~tol:1e-8 (Mat.mul m mi) (Mat.identity 5))

let test_mat_trace_cyclic () =
  let a = random_mat 4 and b = random_mat 4 in
  let lhs = Mat.trace (Mat.mul a b) and rhs = Mat.trace (Mat.mul b a) in
  Alcotest.(check bool) "tr(ab) = tr(ba)" true (Cx.close ~tol:1e-8 lhs rhs)

let test_mat_phase_dist () =
  let u = random_unitary 4 in
  let v = Mat.smul (Cx.expi 1.234) u in
  check_float ~tol:1e-8 "phase_dist(u, e^{i a} u) = 0" 0.0 (Mat.phase_dist u v);
  Alcotest.(check bool) "allclose_up_to_phase" true (Mat.allclose_up_to_phase u v)

let test_mat_fix_det_su () =
  let u = random_unitary 4 in
  let su = Mat.fix_det_su u in
  Alcotest.(check bool) "det = 1" true (Cx.close ~tol:1e-8 (Mat.det su) Cx.one);
  Alcotest.(check bool) "same up to phase" true
    (Mat.allclose_up_to_phase ~tol:1e-8 su u)

(* ------------------------------------------------------------------ Eig *)

let test_eig_hermitian_reconstruct () =
  let h = random_hermitian 5 in
  let w, v = Eig.hermitian h in
  Alcotest.(check bool) "v unitary" true (Mat.is_unitary ~tol:1e-8 v);
  let d = Mat.init 5 5 (fun i j -> if i = j then Cx.of_float w.(i) else Cx.zero) in
  let rec_ = Mat.mul3 v d (Mat.dagger v) in
  Alcotest.(check bool) "v d v† = h" true (Mat.equal ~tol:1e-8 rec_ h);
  let sorted = Array.copy w in
  Array.sort compare sorted;
  Alcotest.(check bool) "eigenvalues ascending" true (sorted = w)

let test_eig_simultaneous () =
  (* Build a commuting pair from a shared eigenbasis. *)
  let q =
    let a = Mat.init 4 4 (fun _ _ -> Cx.of_float (Rng.gaussian rng)) in
    let u, _, v = Svd.svd a in
    let o = Mat.mul u (Mat.dagger v) in
    (* u, v real here since a real; product is real orthogonal *)
    o
  in
  let diag l = Mat.init 4 4 (fun i j -> if i = j then Cx.of_float (List.nth l i) else Cx.zero) in
  let a = Mat.mul3 q (diag [ 1.0; 2.0; 2.0; 3.0 ]) (Mat.transpose q) in
  let b = Mat.mul3 q (diag [ 5.0; 1.0; 4.0; 1.0 ]) (Mat.transpose q) in
  let v = Eig.simultaneous_real a b in
  let da = Mat.mul3 (Mat.transpose v) a v and db = Mat.mul3 (Mat.transpose v) b v in
  check_float ~tol:1e-7 "a diagonalized" 0.0 (Eig.offdiag_norm da);
  check_float ~tol:1e-7 "b diagonalized" 0.0 (Eig.offdiag_norm db)

(* ----------------------------------------------------------------- Expm *)

let test_expm_pauli_z () =
  let z = Mat.of_real_arrays [| [| 1.0; 0.0 |]; [| 0.0; -1.0 |] |] in
  let t = 0.7 in
  let u = Expm.herm_expi z ~t in
  let expected =
    Mat.of_arrays [| [| Cx.expi (-.t); Cx.zero |]; [| Cx.zero; Cx.expi t |] |]
  in
  Alcotest.(check bool) "exp(-itZ)" true (Mat.equal ~tol:1e-10 u expected)

let test_expm_unitary () =
  let h = random_hermitian 4 in
  let u = Expm.herm_expi h ~t:1.3 in
  Alcotest.(check bool) "exp(-ith) unitary" true (Mat.is_unitary ~tol:1e-8 u)

let test_expm_group_law () =
  let h = random_hermitian 4 in
  let u1 = Expm.herm_expi h ~t:0.4 and u2 = Expm.herm_expi h ~t:0.9 in
  let u12 = Expm.herm_expi h ~t:1.3 in
  Alcotest.(check bool) "U(0.4) U(0.9) = U(1.3)" true
    (Mat.equal ~tol:1e-8 (Mat.mul u1 u2) u12)

(* ------------------------------------------------------------------ Svd *)

let test_svd_reconstruct () =
  let m = random_mat 4 in
  let u, s, v = Svd.svd m in
  Alcotest.(check bool) "u unitary" true (Mat.is_unitary ~tol:1e-8 u);
  Alcotest.(check bool) "v unitary" true (Mat.is_unitary ~tol:1e-8 v);
  let d = Mat.init 4 4 (fun i j -> if i = j then Cx.of_float s.(i) else Cx.zero) in
  Alcotest.(check bool) "u s v† = m" true (Mat.equal ~tol:1e-7 (Mat.mul3 u d (Mat.dagger v)) m)

let test_svd_rank_deficient () =
  (* Rank-1 matrix still yields full unitaries. *)
  let m = Mat.init 4 4 (fun i j -> if i = 0 && j = 0 then Cx.of_float 2.0 else Cx.zero) in
  let u, s, v = Svd.svd m in
  Alcotest.(check bool) "u unitary" true (Mat.is_unitary ~tol:1e-8 u);
  Alcotest.(check bool) "v unitary" true (Mat.is_unitary ~tol:1e-8 v);
  check_float ~tol:1e-10 "top singular value" 2.0 s.(0);
  check_float ~tol:1e-10 "rest zero" 0.0 s.(1)

let test_svd_maximizer () =
  let x = random_mat 4 in
  let g = Svd.unitary_maximizer x in
  Alcotest.(check bool) "g unitary" true (Mat.is_unitary ~tol:1e-8 g);
  let attained = Cx.re (Mat.trace (Mat.mul x g)) in
  check_float ~tol:1e-7 "attains nuclear norm" (Svd.nuclear_norm x) attained;
  (* any other unitary does no better *)
  let other = random_unitary 4 in
  Alcotest.(check bool) "maximal" true
    (Cx.re (Mat.trace (Mat.mul x other)) <= attained +. 1e-9)

(* ---------------------------------------------------------------- Roots *)

let test_bisect_sin () =
  let r = Roots.bisect sin 3.0 3.3 in
  check_float ~tol:1e-10 "root of sin near pi" Float.pi r

let test_smallest_root () =
  match Roots.smallest_root_above cos ~lo:0.0 ~hi:10.0 ~steps:100 with
  | Some r -> check_float ~tol:1e-10 "first root of cos" (Float.pi /. 2.0) r
  | None -> Alcotest.fail "no root found"

let test_smallest_root_none () =
  match Roots.smallest_root_above (fun x -> (x *. x) +. 1.0) ~lo:0.0 ~hi:5.0 ~steps:50 with
  | None -> ()
  | Some _ -> Alcotest.fail "found spurious root"

let test_newton2d () =
  (* x^2 + y^2 = 4, x = y  =>  (sqrt 2, sqrt 2) from a nearby start *)
  let f (x, y) = ((x *. x) +. (y *. y) -. 4.0, x -. y) in
  match Roots.newton2d f (1.0, 1.2) with
  | Some (x, y) ->
    check_float ~tol:1e-9 "x" (sqrt 2.0) x;
    check_float ~tol:1e-9 "y" (sqrt 2.0) y
  | None -> Alcotest.fail "newton2d did not converge"

(* ------------------------------------------------------------- Optimize *)

let test_nelder_mead_quadratic () =
  let f x = ((x.(0) -. 1.0) ** 2.0) +. ((x.(1) +. 2.0) ** 2.0) in
  let x, v = Optimize.nelder_mead f [| 0.0; 0.0 |] in
  check_float ~tol:1e-5 "x0" 1.0 x.(0);
  check_float ~tol:1e-5 "x1" (-2.0) x.(1);
  check_float ~tol:1e-8 "min value" 0.0 v

let test_nelder_mead_rosenbrock () =
  let f x =
    ((1.0 -. x.(0)) ** 2.0) +. (100.0 *. ((x.(1) -. (x.(0) *. x.(0))) ** 2.0))
  in
  let x, _ = Optimize.nelder_mead ~max_iter:5000 f [| -1.0; 1.0 |] in
  check_float ~tol:1e-3 "rosenbrock x" 1.0 x.(0);
  check_float ~tol:1e-3 "rosenbrock y" 1.0 x.(1)

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 7L and b = Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Rng.create 7L in
  let c = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 10 (fun _ -> Rng.int c 1000000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_gaussian_moments () =
  let r = Rng.create 2024L in
  let n = 20000 in
  let sum = ref 0.0 and sum2 = ref 0.0 in
  for _ = 1 to n do
    let g = Rng.gaussian r in
    sum := !sum +. g;
    sum2 := !sum2 +. (g *. g)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum2 /. float_of_int n) -. (mean *. mean) in
  check_float ~tol:0.05 "mean ~ 0" 0.0 mean;
  check_float ~tol:0.05 "var ~ 1" 1.0 var

(* ------------------------------------------------- SoA vs boxed reference *)

(* The SoA kernels must agree with the seed boxed implementation
   ([Numerics.Boxed]) to near machine precision. *)

let soa_tol = 1e-12

let test_soa_mul_agrees () =
  let a = random_mat 4 and b = random_mat 4 in
  let expected = Boxed.to_mat (Boxed.mul (Boxed.of_mat a) (Boxed.of_mat b)) in
  Alcotest.(check bool) "mul agrees with boxed" true
    (Mat.frobenius_dist (Mat.mul a b) expected < soa_tol);
  let dst = Mat.create 4 4 in
  Mat.mul_into ~dst a b;
  Alcotest.(check bool) "mul_into agrees with boxed" true
    (Mat.frobenius_dist dst expected < soa_tol)

let test_soa_dagger_agrees () =
  let a = random_mat 5 in
  let expected = Boxed.to_mat (Boxed.dagger (Boxed.of_mat a)) in
  Alcotest.(check bool) "dagger agrees with boxed" true
    (Mat.frobenius_dist (Mat.dagger a) expected < soa_tol);
  let dst = Mat.create 5 5 in
  Mat.dagger_into ~dst a;
  Alcotest.(check bool) "dagger_into agrees with boxed" true
    (Mat.frobenius_dist dst expected < soa_tol)

let test_soa_add_agrees () =
  let a = random_mat 4 and b = random_mat 4 in
  let expected = Boxed.to_mat (Boxed.add (Boxed.of_mat a) (Boxed.of_mat b)) in
  Alcotest.(check bool) "add agrees with boxed" true
    (Mat.frobenius_dist (Mat.add a b) expected < soa_tol);
  let dst = Mat.create 4 4 in
  Mat.add_into ~dst a b;
  Alcotest.(check bool) "add_into agrees with boxed" true
    (Mat.frobenius_dist dst expected < soa_tol)

let test_soa_expm_agrees () =
  let h = random_hermitian 4 in
  let expected = Boxed.to_mat (Boxed.herm_expi (Boxed.of_mat h) ~t:0.83) in
  (* both sides diagonalize with the same Jacobi rotation order, so they
     agree far below the usual eigensolver tolerance *)
  Alcotest.(check bool) "herm_expi agrees with boxed" true
    (Mat.frobenius_dist (Expm.herm_expi h ~t:0.83) expected < 1e-10)

let test_soa_eig_reconstruction () =
  let h = random_hermitian 6 in
  let w, v = Eig.hermitian h in
  let d = Mat.init 6 6 (fun i j -> if i = j then Cx.of_float w.(i) else Cx.zero) in
  Alcotest.(check bool) "V D V† = H" true
    (Mat.frobenius_dist (Mat.mul3 v d (Mat.dagger v)) h < 1e-10);
  let bw, _ = Boxed.jacobi (Boxed.of_mat h) in
  Array.sort compare bw;
  Array.iteri
    (fun i x -> check_float ~tol:1e-10 "eigenvalue agrees with boxed" x w.(i))
    bw

let test_soa_gemm () =
  let a = random_mat 4 and b = random_mat 4 and c = random_mat 4 in
  (* gemm ~alpha ~beta: dst <- alpha a b + beta dst *)
  let dst = Mat.copy c in
  Mat.gemm ~alpha:(Cx.of_float 2.0) ~beta:(Cx.of_float 0.5) ~dst a b;
  let expected = Mat.add (Mat.rsmul 2.0 (Mat.mul a b)) (Mat.rsmul 0.5 c) in
  Alcotest.(check bool) "gemm" true (Mat.frobenius_dist dst expected < soa_tol)

let test_soa_trace_mul () =
  let a = random_mat 4 and b = random_mat 4 in
  Alcotest.(check bool) "trace_mul = trace (mul a b)" true
    (Cx.close ~tol:1e-12 (Mat.trace_mul a b) (Mat.trace (Mat.mul a b)))

let test_soa_mul_into_alias_rejected () =
  let a = random_mat 4 in
  Alcotest.check_raises "mul_into rejects dst == a"
    (Invalid_argument "Mat.mul_into: dst aliases an input") (fun () ->
      Mat.mul_into ~dst:a a (random_mat 4))

(* ------------------------------------------------------------------ Par *)

let test_par_map_matches_list_map () =
  (* non-commutative per-item function: result depends on the item's own
     prefix string, so any ordering/chunking mistake shows up *)
  let f s = String.concat "|" [ s; String.uppercase_ascii s; string_of_int (String.length s) ] in
  let xs = List.init 97 (fun i -> Printf.sprintf "item-%d" i) in
  let expected = List.map f xs in
  List.iter
    (fun domains ->
      Alcotest.(check (list string))
        (Printf.sprintf "parallel_map (domains=%d) preserves order" domains)
        expected
        (Par.parallel_map ~domains f xs))
    [ 1; 2; 5; 200 ]

let test_par_init_matches_array_init () =
  let f i = (i * i) - (3 * i) in
  let expected = Array.init 64 f in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "parallel_init (domains=%d)" domains)
        expected
        (Par.parallel_init ~domains 64 f))
    [ 1; 3; 64; 100 ]

let test_par_sum_deterministic () =
  (* summation order must not depend on the domain count: fold is over the
     materialized per-index array, so results are bit-identical *)
  let f i = sin (float_of_int i *. 0.1) /. (1.0 +. float_of_int i) in
  let base = Par.parallel_sum ~domains:1 1000 f in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "parallel_sum (domains=%d) bit-identical" domains)
        true
        (Par.parallel_sum ~domains 1000 f = base))
    [ 2; 3; 7 ]

let test_par_empty_and_single () =
  Alcotest.(check (list int)) "empty list" [] (Par.parallel_map ~domains:4 (fun x -> x) []);
  Alcotest.(check (list int)) "single item" [ 42 ]
    (Par.parallel_map ~domains:4 (fun x -> x + 41) [ 1 ])

(* qcheck properties *)

let qcheck_tests =
  let mat_gen n =
    QCheck.Gen.(
      array_size (return (n * n)) (pair (float_bound_inclusive 2.0) (float_bound_inclusive 2.0))
      |> map (fun pairs -> Mat.init n n (fun i j -> let re, im = pairs.((i * n) + j) in Cx.mk re im)))
  in
  let arb_mat4 = QCheck.make (mat_gen 4) in
  [
    QCheck.Test.make ~count:50 ~name:"dagger involutive" arb_mat4 (fun m ->
        Mat.equal (Mat.dagger (Mat.dagger m)) m);
    QCheck.Test.make ~count:50 ~name:"trace linear" (QCheck.pair arb_mat4 arb_mat4)
      (fun (a, b) ->
        Cx.close ~tol:1e-8
          (Mat.trace (Mat.add a b))
          (Cx.( +: ) (Mat.trace a) (Mat.trace b)));
    QCheck.Test.make ~count:30 ~name:"hermitian eig real spectrum" arb_mat4 (fun m ->
        let h = Mat.rsmul 0.5 (Mat.add m (Mat.dagger m)) in
        let w, v = Eig.hermitian h in
        Array.for_all Float.is_finite w && Mat.is_unitary ~tol:1e-7 v);
    QCheck.Test.make ~count:30 ~name:"svd singular values nonneg" arb_mat4 (fun m ->
        let _, s, _ = Svd.svd m in
        Array.for_all (fun x -> x >= 0.0) s);
  ]

let () =
  Alcotest.run "numerics"
    [
      ( "mat",
        [
          Alcotest.test_case "mul identity" `Quick test_mat_mul_identity;
          Alcotest.test_case "dagger product" `Quick test_mat_dagger_product;
          Alcotest.test_case "kron" `Quick test_mat_kron_shape;
          Alcotest.test_case "det known" `Quick test_mat_det_known;
          Alcotest.test_case "det multiplicative" `Quick test_mat_det_multiplicative;
          Alcotest.test_case "inverse" `Quick test_mat_inv;
          Alcotest.test_case "trace cyclic" `Quick test_mat_trace_cyclic;
          Alcotest.test_case "phase distance" `Quick test_mat_phase_dist;
          Alcotest.test_case "fix det su" `Quick test_mat_fix_det_su;
        ] );
      ( "eig",
        [
          Alcotest.test_case "hermitian reconstruct" `Quick test_eig_hermitian_reconstruct;
          Alcotest.test_case "simultaneous real pair" `Quick test_eig_simultaneous;
        ] );
      ( "expm",
        [
          Alcotest.test_case "pauli z" `Quick test_expm_pauli_z;
          Alcotest.test_case "unitary" `Quick test_expm_unitary;
          Alcotest.test_case "group law" `Quick test_expm_group_law;
        ] );
      ( "svd",
        [
          Alcotest.test_case "reconstruct" `Quick test_svd_reconstruct;
          Alcotest.test_case "rank deficient" `Quick test_svd_rank_deficient;
          Alcotest.test_case "unitary maximizer" `Quick test_svd_maximizer;
        ] );
      ( "soa",
        [
          Alcotest.test_case "mul vs boxed" `Quick test_soa_mul_agrees;
          Alcotest.test_case "dagger vs boxed" `Quick test_soa_dagger_agrees;
          Alcotest.test_case "add vs boxed" `Quick test_soa_add_agrees;
          Alcotest.test_case "expm vs boxed" `Quick test_soa_expm_agrees;
          Alcotest.test_case "eig reconstruction" `Quick test_soa_eig_reconstruction;
          Alcotest.test_case "gemm" `Quick test_soa_gemm;
          Alcotest.test_case "trace_mul" `Quick test_soa_trace_mul;
          Alcotest.test_case "alias rejected" `Quick test_soa_mul_into_alias_rejected;
        ] );
      ( "par",
        [
          Alcotest.test_case "map preserves order" `Quick test_par_map_matches_list_map;
          Alcotest.test_case "init matches" `Quick test_par_init_matches_array_init;
          Alcotest.test_case "sum deterministic" `Quick test_par_sum_deterministic;
          Alcotest.test_case "empty and single" `Quick test_par_empty_and_single;
        ] );
      ( "roots",
        [
          Alcotest.test_case "bisect sin" `Quick test_bisect_sin;
          Alcotest.test_case "smallest root" `Quick test_smallest_root;
          Alcotest.test_case "no root" `Quick test_smallest_root_none;
          Alcotest.test_case "newton2d" `Quick test_newton2d;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "quadratic" `Quick test_nelder_mead_quadratic;
          Alcotest.test_case "rosenbrock" `Quick test_nelder_mead_rosenbrock;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest qcheck_tests);
    ]
