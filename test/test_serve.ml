(* Compilation server: JSON wire format, protocol parsing, and the server
   loop driven over temp-file channels — malformed input, budget
   exhaustion and injected solver faults must all come back as typed JSON
   error responses (never a dead worker), and the server must keep
   serving afterwards and drain cleanly. *)

let disarm () = Robust.Fault.configure None

let with_faults spec f =
  Robust.Fault.configure (Some spec);
  Fun.protect ~finally:disarm f

let xy = Microarch.Coupling.xy ~g:1.0

(* a Weyl chamber point planned onto an EA subscheme, so budgets and
   ea_noconv faults bite (same probing as test_robust) *)
let ea_xyz =
  let candidates =
    [ (0.5, 0.3, 0.1); (0.7, 0.2, 0.1); (0.6, 0.5, 0.4); (0.3, 0.2, 0.1);
      (0.75, 0.4, 0.0) ]
  in
  let is_ea (x, y, z) =
    let c = Weyl.Coords.make x y z in
    match (Microarch.Tau.plan xy c).Microarch.Tau.subscheme with
    | Microarch.Tau.EA_same | Microarch.Tau.EA_opposite -> true
    | Microarch.Tau.ND -> false
  in
  match List.find_opt is_ea candidates with
  | Some xyz -> xyz
  | None -> Alcotest.fail "no EA-subscheme candidate coords under XY coupling"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ----------------------------------------------------------------- json *)

let rec json_eq a b =
  match (a, b) with
  | Serve.Json.Num x, Serve.Json.Num y -> Int64.bits_of_float x = Int64.bits_of_float y
  | Serve.Json.Arr xs, Serve.Json.Arr ys ->
    List.length xs = List.length ys && List.for_all2 json_eq xs ys
  | Serve.Json.Obj xs, Serve.Json.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k, v) (k', v') -> k = k' && json_eq v v') xs ys
  | _ -> a = b

let test_json_roundtrip () =
  let samples =
    [
      "null"; "true"; "false"; "0"; "-12"; "3.5"; "1e-3"; "\"\"";
      "\"a b\\n\\t\\\"c\\\"\""; "[]"; "[1,[2,[3]]]"; "{}";
      "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}";
    ]
  in
  List.iter
    (fun s ->
      match Serve.Json.parse s with
      | Error e -> Alcotest.failf "parse %s: %s" s e
      | Ok v -> (
        match Serve.Json.parse (Serve.Json.to_string v) with
        | Error e -> Alcotest.failf "reparse %s: %s" s e
        | Ok v' ->
          Alcotest.(check bool) ("round trip " ^ s) true (json_eq v v')))
    samples;
  (* floats survive the emitter exactly *)
  List.iter
    (fun f ->
      match Serve.Json.parse (Serve.Json.to_string (Serve.Json.Num f)) with
      | Ok (Serve.Json.Num f') ->
        Alcotest.(check bool)
          (Printf.sprintf "float %.17g" f)
          true
          (Int64.bits_of_float f = Int64.bits_of_float f')
      | _ -> Alcotest.failf "float %.17g did not round trip" f)
    [ 0.1; -1.0 /. 3.0; Float.pi; 1e-300; 9.007199254740993e15 ]

let test_json_unicode () =
  (match Serve.Json.parse "\"\\u0041\\u00e9\"" with
  | Ok (Serve.Json.Str s) -> Alcotest.(check string) "bmp escapes" "A\xc3\xa9" s
  | _ -> Alcotest.fail "bmp escape parse");
  match Serve.Json.parse "\"\\ud83d\\ude00\"" with
  | Ok (Serve.Json.Str s) ->
    Alcotest.(check string) "surrogate pair to utf-8" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "surrogate pair parse"

let test_json_malformed () =
  List.iter
    (fun s ->
      match Serve.Json.parse s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %s" s)
    [
      ""; "{"; "}"; "{\"a\"}"; "{\"a\":}"; "[1,]"; "[1 2]"; "\"unterminated";
      "\"bad \\x escape\""; "truef"; "1.2.3"; "{\"a\":1} trailing"; "nul";
    ]

let test_json_accessors () =
  match Serve.Json.parse "{\"n\":3,\"s\":\"x\",\"b\":true,\"a\":[1]}" with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok v ->
    Alcotest.(check (option int)) "int" (Some 3) (Serve.Json.mem_int "n" v);
    Alcotest.(check (option string)) "str" (Some "x") (Serve.Json.mem_str "s" v);
    Alcotest.(check (option bool)) "bool" (Some true) (Serve.Json.mem_bool "b" v);
    Alcotest.(check (option int)) "shape mismatch" None (Serve.Json.mem_int "s" v);
    Alcotest.(check (option int)) "missing member" None (Serve.Json.mem_int "zz" v)

(* --------------------------------------------- json property round-trip *)

(* seeded random document generator: nesting, unicode escapes (raw UTF-8
   and control bytes the emitter must \u-escape), and extreme floats —
   parse (emit v) must reproduce v bit-for-bit *)

let str_palette =
  [|
    "a"; "key"; " "; "\""; "\\"; "/"; "\n"; "\t"; "\r"; "\x01"; "\x1f";
    "\xc3\xa9" (* é *); "\xe2\x86\x92" (* → *); "\xf0\x9f\x98\x80" (* 😀 *);
    "{"; "}"; "[,]"; ":"; "0"; "e";
  |]

let gen_str rng =
  let n = Random.State.int rng 5 in
  let buf = Buffer.create 8 in
  for _ = 1 to n do
    Buffer.add_string buf str_palette.(Random.State.int rng (Array.length str_palette))
  done;
  Buffer.contents buf

let gen_num rng =
  match Random.State.int rng 6 with
  | 0 -> float_of_int (Random.State.int rng 2001 - 1000)
  | 1 -> Random.State.float rng 2.0 -. 1.0
  | 2 -> (Random.State.float rng 2.0 -. 1.0) *. 1e300
  | 3 -> (Random.State.float rng 2.0 -. 1.0) *. 1e-300 (* subnormal territory *)
  | 4 ->
    (* arbitrary finite bit patterns: the harshest emitter test *)
    let rec finite () =
      let f = Int64.float_of_bits (Random.State.int64 rng Int64.max_int) in
      if Float.is_nan f then finite () else f
    in
    finite ()
  | _ ->
    [| 0.0; -0.0; Float.max_float; Float.min_float; epsilon_float; 5e-324;
       9.007199254740993e15 |].(Random.State.int rng 7)

let gen_json rng =
  let key_id = ref 0 in
  let rec go depth =
    let cap = if depth >= 6 then 4 else 6 in
    match Random.State.int rng cap with
    | 0 -> Serve.Json.Null
    | 1 -> Serve.Json.Bool (Random.State.bool rng)
    | 2 -> Serve.Json.Num (gen_num rng)
    | 3 -> Serve.Json.Str (gen_str rng)
    | 4 -> Serve.Json.Arr (List.init (Random.State.int rng 5) (fun _ -> go (depth + 1)))
    | _ ->
      Serve.Json.Obj
        (List.init (Random.State.int rng 5) (fun _ ->
             (* counter suffix keeps keys distinct within one object *)
             incr key_id;
             (Printf.sprintf "%s#%d" (gen_str rng) !key_id, go (depth + 1))))
  in
  go 0

let test_json_property_roundtrip () =
  let rng = Random.State.make [| 0x5eed; 2026 |] in
  for case = 1 to 512 do
    let v = gen_json rng in
    let s = Serve.Json.to_string v in
    match Serve.Json.parse s with
    | Error e -> Alcotest.failf "case %d: reparse of %s failed: %s" case s e
    | Ok v' ->
      if not (json_eq v v') then
        Alcotest.failf "case %d: round trip mismatch\nemitted:  %s\nreparsed: %s" case s
          (Serve.Json.to_string v')
  done;
  (* infinities have a parseable spelling; NaN collapses to null by design *)
  List.iter
    (fun f ->
      match Serve.Json.parse (Serve.Json.to_string (Serve.Json.Num f)) with
      | Ok (Serve.Json.Num f') ->
        Alcotest.(check bool) "infinity round trips" true
          (Int64.bits_of_float f = Int64.bits_of_float f')
      | _ -> Alcotest.fail "infinity did not round trip")
    [ Float.infinity; Float.neg_infinity ];
  match Serve.Json.parse (Serve.Json.to_string (Serve.Json.Num Float.nan)) with
  | Ok Serve.Json.Null -> ()
  | _ -> Alcotest.fail "NaN must emit as null"

let test_json_rejection_corpus () =
  let deep n = String.concat "" (List.init n (fun _ -> "[")) ^ "0" in
  let reject s label =
    match Serve.Json.parse s with
    | Ok _ -> Alcotest.failf "accepted %s" label
    | Error msg ->
      (* every rejection is a located error (never an exception) *)
      Alcotest.(check bool)
        (Printf.sprintf "%s error is located: %s" label msg)
        true (contains msg "offset")
  in
  (* truncations *)
  List.iter
    (fun s -> reject s ("truncated " ^ s))
    [ "{\"a\":"; "[1,"; "\"half"; "{\"a\":1"; "[{\"b\":[" ; "12e"; "-" ];
  (* trailing garbage *)
  List.iter
    (fun s -> reject s ("trailing " ^ s))
    [ "1 2"; "{} {}"; "null,"; "[1]]" ];
  (* NaN / Infinity have no JSON spelling on the way in *)
  List.iter (fun s -> reject s s) [ "NaN"; "Infinity"; "-Infinity"; "nan"; "inf" ];
  (* nesting: the cap admits max_depth levels and rejects one more *)
  (match Serve.Json.parse (deep Serve.Json.max_depth ^ String.make Serve.Json.max_depth ']') with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth %d should parse: %s" Serve.Json.max_depth e);
  (match Serve.Json.parse (deep (Serve.Json.max_depth + 1)) with
  | Ok _ -> Alcotest.fail "past-cap nesting accepted"
  | Error msg ->
    Alcotest.(check bool) "names the nesting cap" true (contains msg "nesting");
    Alcotest.(check bool) "located" true (contains msg "offset"))

(* ------------------------------------------------------------- protocol *)

let parse_body line =
  let p = Serve.Protocol.parse_line line in
  p.Serve.Protocol.body

let test_protocol_parse_ok () =
  (match parse_body "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\",\"mode\":\"full\",\"pulses\":true}" with
  | Ok { Serve.Protocol.op = Serve.Protocol.Compile { bench; mode; pulses; _ }; budget; _ } ->
    Alcotest.(check string) "bench" "alu_2" bench;
    Alcotest.(check string) "mode" "full" mode;
    Alcotest.(check bool) "pulses" true pulses;
    Alcotest.(check bool) "no budget" true (budget = None)
  | _ -> Alcotest.fail "compile body");
  (match parse_body "{\"v\":1,\"op\":\"pulses\",\"coords\":[0.5,0.3,0.1],\"budget\":{\"max_iterations\":5}}" with
  | Ok
      {
        Serve.Protocol.op = Serve.Protocol.Pulses { target = Serve.Protocol.Coords (x, y, z); _ };
        budget = Some b;
        _;
      } ->
    Alcotest.(check (float 0.0)) "x" 0.5 x;
    Alcotest.(check (float 0.0)) "y" 0.3 y;
    Alcotest.(check (float 0.0)) "z" 0.1 z;
    Alcotest.(check (option int)) "budget iterations" (Some 5)
      b.Serve.Protocol.max_iterations
  | _ -> Alcotest.fail "pulses coords body");
  match parse_body "{\"v\":1,\"op\":\"batch\",\"requests\":[{\"op\":\"stats\"},{\"op\":\"pulses\",\"gate\":\"cz\"}]}" with
  | Ok { Serve.Protocol.op = Serve.Protocol.Batch items; _ } ->
    Alcotest.(check int) "batch size" 2 (List.length items)
  | _ -> Alcotest.fail "batch body"

let test_protocol_parse_errors () =
  let expect_err line frag =
    match parse_body line with
    | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s mentions %s" line frag)
        true (contains msg frag)
    | Ok _ -> Alcotest.failf "expected error for %s" line
  in
  expect_err "not json at all" "";
  expect_err "{\"v\":1,\"op\":\"nope\"}" "nope";
  expect_err "{\"v\":1,\"id\":1}" "op";
  expect_err "{\"v\":1,\"op\":\"compile\"}" "bench";
  expect_err "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\",\"mode\":\"hyper\"}" "mode";
  expect_err "{\"v\":1,\"op\":\"pulses\"}" "gate";
  expect_err "{\"v\":1,\"op\":\"pulses\",\"gate\":\"cz\",\"coords\":[0.1,0.0,0.0]}" "";
  expect_err "{\"v\":1,\"op\":\"pulses\",\"gate\":\"cz\",\"coupling\":\"zz\"}" "coupling";
  expect_err "{\"v\":1,\"op\":\"batch\",\"requests\":[{\"op\":\"batch\",\"requests\":[]}]}" "batch";
  (* a malformed line still recovers the id when one is readable *)
  let p = Serve.Protocol.parse_line "{\"v\":1,\"id\":42,\"op\":\"nope\"}" in
  Alcotest.(check (option int)) "recovered id" (Some 42)
    (Serve.Json.int p.Serve.Protocol.id)

let test_protocol_passes () =
  (* a custom plan parses into the op *)
  (match
     parse_body
       "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\",\"passes\":[\"lower_3q\",\"template\",\"mirroring\"]}"
   with
  | Ok { Serve.Protocol.op = Serve.Protocol.Compile { passes = Some ps; _ }; _ } ->
    Alcotest.(check (list string)) "pass names"
      [ "lower_3q"; "template"; "mirroring" ] ps
  | _ -> Alcotest.fail "compile with passes");
  (match parse_body "{\"v\":1,\"op\":\"pulses\",\"gate\":\"cz\",\"passes\":[\"lower_3q\",\"template\"]}" with
  | Ok { Serve.Protocol.op = Serve.Protocol.Pulses { passes = Some _; _ }; _ } -> ()
  | _ -> Alcotest.fail "pulses gate with passes");
  (* unknown names are typed bad requests naming the registry *)
  (match parse_body "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\",\"passes\":[\"nope\"]}" with
  | Error msg ->
    Alcotest.(check bool) "names the unknown pass" true (contains msg "nope");
    Alcotest.(check bool) "names the registry" true (contains msg "known passes");
    Alcotest.(check bool) "mentions peephole" true (contains msg "peephole")
  | Ok _ -> Alcotest.fail "unknown pass accepted");
  (* an empty array is an error, not an empty plan *)
  (match parse_body "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\",\"passes\":[]}" with
  | Error msg -> Alcotest.(check bool) "empty plan rejected" true (contains msg "non-empty")
  | Ok _ -> Alcotest.fail "empty passes accepted");
  (match parse_body "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\",\"passes\":[1]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-string pass accepted");
  (* coords have no circuit to compile, so passes cannot apply *)
  (match
     parse_body "{\"v\":1,\"op\":\"pulses\",\"coords\":[0.5,0.0,0.0],\"passes\":[\"lower_3q\"]}"
   with
  | Error msg -> Alcotest.(check bool) "coords+passes rejected" true (contains msg "gate")
  | Ok _ -> Alcotest.fail "coords with passes accepted");
  (* the plan folds into the coalescing key only when present: legacy
     keys are unchanged, and distinct plans never share a key *)
  let key line =
    match Serve.Protocol.parse_line line with
    | { Serve.Protocol.body = Ok b; _ } -> Serve.Protocol.body_key b
    | _ -> Alcotest.failf "unparseable: %s" line
  in
  let base = "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\"}" in
  let with_null = "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\",\"passes\":null}" in
  let planned =
    "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\",\"passes\":[\"lower_3q\",\"template\",\"mirroring\"]}"
  in
  let planned2 =
    "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\",\"passes\":[\"lower_3q\",\"template\",\"peephole\",\"mirroring\"]}"
  in
  Alcotest.(check bool) "legacy = explicit-null key" true (key base = key with_null);
  Alcotest.(check bool) "plan changes the key" true (key base <> key planned);
  Alcotest.(check bool) "distinct plans, distinct keys" true (key planned <> key planned2);
  Alcotest.(check bool) "same plan, same key" true (key planned = key planned)

let test_protocol_version () =
  (* no "v" at all *)
  (match parse_body "{\"op\":\"stats\"}" with
  | Error msg ->
    Alcotest.(check bool) "missing v mentions version" true (contains msg "version")
  | Ok _ -> Alcotest.fail "missing v accepted");
  (* an alien version *)
  (match parse_body "{\"v\":2,\"op\":\"stats\"}" with
  | Error msg ->
    Alcotest.(check bool) "v=2 unsupported" true (contains msg "unsupported")
  | Ok _ -> Alcotest.fail "v=2 accepted");
  (* a non-integer version *)
  (match parse_body "{\"v\":\"1\",\"op\":\"stats\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "string v accepted");
  (* the current version parses *)
  match parse_body (Printf.sprintf "{\"v\":%d,\"op\":\"stats\"}" Serve.Protocol.version) with
  | Ok { Serve.Protocol.op = Serve.Protocol.Stats; _ } -> ()
  | _ -> Alcotest.fail "current version rejected"

let test_protocol_frame_cap () =
  (* an oversized line is refused before any JSON work, as a typed
     bad_request naming the limit — and the id is NOT recovered (scanning
     an arbitrarily long line for it would defeat the cap) *)
  let limit = 256 in
  let long = "{\"v\":1,\"id\":1,\"op\":\"stats\",\"pad\":\"" ^ String.make 300 'x' ^ "\"}" in
  (let p = Serve.Protocol.parse_line ~max_bytes:limit long in
   match p.Serve.Protocol.body with
   | Ok _ -> Alcotest.fail "oversized frame accepted"
   | Error msg ->
     Alcotest.(check bool) "names the byte limit" true (contains msg "256-byte");
     Alcotest.(check bool) "says frame limit" true (contains msg "frame limit");
     Alcotest.(check bool) "id not recovered" true (p.Serve.Protocol.id = Serve.Json.Null));
  (* at the limit exactly, the frame is processed normally *)
  let pad = String.make (limit - String.length "{\"v\":1,\"op\":\"stats\",\"pad\":\"\"}") 'y' in
  let exact = "{\"v\":1,\"op\":\"stats\",\"pad\":\"" ^ pad ^ "\"}" in
  Alcotest.(check int) "exact-limit frame length" limit (String.length exact);
  (match (Serve.Protocol.parse_line ~max_bytes:limit exact).Serve.Protocol.body with
  | Ok { Serve.Protocol.op = Serve.Protocol.Stats; _ } -> ()
  | Ok _ -> Alcotest.fail "wrong op"
  | Error e -> Alcotest.failf "exact-limit frame rejected: %s" e);
  (* the default cap is the documented constant *)
  Alcotest.(check int) "default cap" (1 lsl 20) Serve.Protocol.max_line_bytes;
  let over_default = String.make (Serve.Protocol.max_line_bytes + 1) 'z' in
  match (Serve.Protocol.parse_line over_default).Serve.Protocol.body with
  | Error msg ->
    Alcotest.(check bool) "default cap enforced" true (contains msg "frame limit")
  | Ok _ -> Alcotest.fail "default cap not enforced"

let test_response_carries_version () =
  let item = Serve.Protocol.ok_item ~op:"stats" Serve.Json.Null in
  Alcotest.(check (option int)) "ok response v" (Some Serve.Protocol.version)
    (Serve.Json.mem_int "v" item);
  let err = Serve.Protocol.error_item ~kind:"bad_request" ~stage:"t" "m" in
  Alcotest.(check (option int)) "error response v" (Some Serve.Protocol.version)
    (Serve.Json.mem_int "v" err)

(* --------------------------------------------------------------- server *)

(* drive a full Server.run over temp-file channels and hand back the
   response lines *)
let run_server ?(workers = 1) lines =
  let req = Filename.temp_file "reqisc_test" ".in" in
  let resp = Filename.temp_file "reqisc_test" ".out" in
  let oc = open_out req in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines;
  close_out oc;
  let ic = open_in req in
  let out = open_out resp in
  let summary =
    Serve.Server.run
      ~config:{ Serve.Server.default_config with Serve.Server.workers }
      ic out
  in
  close_in ic;
  close_out out;
  let acc = ref [] in
  let ic = open_in resp in
  (try
     while true do
       acc := input_line ic :: !acc
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove req;
  Sys.remove resp;
  match summary with
  | Error e -> Alcotest.failf "server failed to start: %s" e
  | Ok s -> (s, List.rev !acc)

let find_by_id lines id =
  match
    List.find_opt
      (fun l ->
        match Serve.Json.parse l with
        | Ok j -> Serve.Json.mem_int "id" j = Some id
        | Error _ -> false)
      lines
  with
  | Some l -> l
  | None -> Alcotest.failf "no response with id %d" id

let test_server_happy_path () =
  disarm ();
  let summary, lines =
    run_server
      [
        "{\"v\":1,\"id\":1,\"op\":\"stats\"}";
        "{\"v\":1,\"id\":2,\"op\":\"pulses\",\"gate\":\"cnot\"}";
        "{\"v\":1,\"id\":3,\"op\":\"batch\",\"requests\":[{\"op\":\"pulses\",\"gate\":\"cz\"},{\"op\":\"stats\"}]}";
      ]
  in
  Alcotest.(check int) "three responses" 3 (List.length lines);
  Alcotest.(check int) "served" 3 summary.Serve.Server.served;
  Alcotest.(check int) "no errors" 0 summary.Serve.Server.errors;
  List.iter
    (fun l -> Alcotest.(check bool) "ok response" true (contains l "\"ok\":true"))
    lines;
  Alcotest.(check bool) "pulse payload present" true
    (contains (find_by_id lines 2) "\"tau\"");
  (* every response echoes the protocol version *)
  List.iter
    (fun l -> Alcotest.(check bool) "response carries v" true (contains l "\"v\":1"))
    lines

let test_server_version_negotiation () =
  disarm ();
  let summary, lines =
    run_server
      [
        "{\"id\":1,\"op\":\"stats\"}";
        "{\"v\":99,\"id\":2,\"op\":\"stats\"}";
        "{\"v\":1,\"id\":3,\"op\":\"stats\"}";
      ]
  in
  Alcotest.(check int) "all answered" 3 (List.length lines);
  Alcotest.(check int) "two rejections" 2 summary.Serve.Server.errors;
  Alcotest.(check bool) "missing v is bad_request" true
    (contains (find_by_id lines 1) "bad_request");
  Alcotest.(check bool) "alien v is bad_request" true
    (contains (find_by_id lines 2) "bad_request");
  Alcotest.(check bool) "alien v names the number" true
    (contains (find_by_id lines 2) "99");
  Alcotest.(check bool) "current v accepted" true
    (contains (find_by_id lines 3) "\"ok\":true")

let test_server_stats_obs_block () =
  disarm ();
  let _, lines =
    run_server
      [
        "{\"v\":1,\"id\":1,\"op\":\"pulses\",\"gate\":\"cnot\"}";
        "{\"v\":1,\"id\":2,\"op\":\"stats\"}";
      ]
  in
  let l = find_by_id lines 2 in
  (* the self-installed recorder means stats always carries live span
     aggregates: the pulses request just served must appear *)
  Alcotest.(check bool) "stats has obs block" true (contains l "\"obs\"");
  Alcotest.(check bool) "obs has span map" true (contains l "\"spans\"");
  Alcotest.(check bool) "exec span for pulses present" true
    (contains l "serve.exec.pulses");
  match Serve.Json.parse l with
  | Error e -> Alcotest.failf "stats response not JSON: %s" e
  | Ok j -> (
    match Serve.Json.member "result" j with
    | Some r ->
      Alcotest.(check bool) "obs parses as object" true
        (match Serve.Json.member "obs" r with
        | Some (Serve.Json.Obj _) -> true
        | _ -> false)
    | None -> Alcotest.fail "stats result missing")

let test_server_malformed_request () =
  disarm ();
  let summary, lines =
    run_server
      [
        "this is not json";
        "{\"v\":1,\"id\":7,\"op\":\"nope\"}";
        "{\"v\":1,\"id\":8,\"op\":\"pulses\",\"gate\":\"bogus\"}";
        "{\"v\":1,\"id\":9,\"op\":\"stats\"}";
      ]
  in
  Alcotest.(check int) "every line answered" 4 (List.length lines);
  Alcotest.(check int) "errors counted" 3 summary.Serve.Server.errors;
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "id %d rejected as bad_request" id)
        true
        (contains (find_by_id lines id) "bad_request"))
    [ 7; 8 ];
  (* the server must keep serving after garbage *)
  Alcotest.(check bool) "later request still ok" true
    (contains (find_by_id lines 9) "\"ok\":true")

let test_server_over_budget () =
  disarm ();
  let x, y, z = ea_xyz in
  let req =
    Printf.sprintf
      "{\"v\":1,\"id\":1,\"op\":\"pulses\",\"coords\":[%.17g,%.17g,%.17g],\"budget\":{\"max_seconds\":0}}"
      x y z
  in
  let summary, lines = run_server [ req; "{\"v\":1,\"id\":2,\"op\":\"pulses\",\"gate\":\"cnot\"}" ] in
  Alcotest.(check int) "both answered" 2 (List.length lines);
  let l = find_by_id lines 1 in
  Alcotest.(check bool) "typed budget error" true (contains l "budget_exceeded");
  Alcotest.(check bool) "is an error response" true (contains l "\"ok\":false");
  Alcotest.(check bool) "unbudgeted request unaffected" true
    (contains (find_by_id lines 2) "\"ok\":true");
  Alcotest.(check int) "summary error count" 1 summary.Serve.Server.errors

let test_server_solver_fault () =
  let x, y, z = ea_xyz in
  let coords_req id =
    Printf.sprintf "{\"v\":1,\"id\":%d,\"op\":\"pulses\",\"coords\":[%.17g,%.17g,%.17g]}" id x y z
  in
  with_faults "ea_noconv:4" (fun () ->
      let summary, lines = run_server [ coords_req 1; "{\"v\":1,\"id\":2,\"op\":\"stats\"}" ] in
      (* the injected non-convergence surfaces as a JSON error — the worker
         survives and still answers the next request *)
      let l = find_by_id lines 1 in
      Alcotest.(check bool) "failure is a response" true (contains l "\"ok\":false");
      Alcotest.(check bool) "typed non_convergence" true (contains l "non_convergence");
      Alcotest.(check bool) "server alive after fault" true
        (contains (find_by_id lines 2) "\"ok\":true");
      Alcotest.(check int) "clean drain" 2 summary.Serve.Server.served)

let test_server_shutdown_drains () =
  disarm ();
  let summary, lines =
    run_server ~workers:2
      [
        "{\"v\":1,\"id\":1,\"op\":\"pulses\",\"gate\":\"cnot\"}";
        "{\"v\":1,\"id\":2,\"op\":\"pulses\",\"gate\":\"iswap\"}";
        "{\"v\":1,\"id\":3,\"op\":\"shutdown\"}";
        "{\"v\":1,\"id\":99,\"op\":\"stats\"}";
      ]
  in
  (* everything queued before the shutdown is drained; the line after it
     is never read *)
  Alcotest.(check int) "drained queue" 3 (List.length lines);
  List.iter (fun id -> ignore (find_by_id lines id)) [ 1; 2; 3 ];
  Alcotest.(check bool) "post-shutdown line unread" true
    (List.for_all (fun l -> not (contains l "\"id\":99")) lines);
  Alcotest.(check int) "summary served" 3 summary.Serve.Server.served

(* ----------------------------------------------------------- coalescing *)

(* Engine-level single-flight tests drive {!Serve.Engine} directly: the
   engine is created with one worker and first fed [plug] cold solves, so
   every storm request is submitted (and its waiter attached) while the
   worker is still busy — the flight cannot complete early, making the
   coalescing count deterministic on any scheduler. *)

let storm_line id =
  Printf.sprintf "{\"v\":1,\"id\":%d,\"op\":\"pulses\",\"coords\":[0.6,0.5,0.4]}" id

(* the plugs are compile requests, for two reasons: they never touch the
   pulse solver (so the storm's solve_run delta is exactly the storm's),
   and their cost is immune to the "ea_noconv" fault site — an armed EA
   fault makes a pulses plug fail in microseconds, which would unplug
   the fault-fan-out storm *)
let plug_lines =
  [
    "{\"v\":1,\"op\":\"compile\",\"bench\":\"qaoa_8\",\"mode\":\"eff\"}";
    "{\"v\":1,\"op\":\"compile\",\"bench\":\"alu_2\",\"mode\":\"eff\"}";
  ]

let strip_id = function
  | Serve.Json.Obj ms -> Serve.Json.Obj (List.filter (fun (k, _) -> k <> "id") ms)
  | v -> v

(* run a K-request storm behind the plugs and hand back the storm
   responses (the plug responses are dropped) *)
let run_storm ?(storm_line = storm_line) ~stormers () =
  let eng = Serve.Engine.create ~workers:1 ~seed:7L () in
  let lock = Mutex.create () in
  let storm_resps = ref [] in
  (* parse everything up front so the submissions themselves are a tight
     loop of queue pushes — the whole storm must be in flight before the
     worker can reach its leader *)
  let plugs = List.map Serve.Protocol.parse_line plug_lines in
  let storms =
    List.init stormers (fun i -> Serve.Protocol.parse_line (storm_line (i + 1)))
  in
  List.iter (fun p -> Serve.Engine.submit eng p ~respond:(fun _ -> ())) plugs;
  List.iter
    (fun p ->
      Serve.Engine.submit eng p
        ~respond:(fun r ->
          Mutex.lock lock;
          storm_resps := r :: !storm_resps;
          Mutex.unlock lock))
    storms;
  Serve.Engine.drain eng;
  !storm_resps

let check_storm_fanout ~stormers resps =
  Alcotest.(check int) "every waiter answered" stormers (List.length resps);
  let ids =
    List.sort compare
      (List.filter_map (fun r -> Serve.Json.mem_int "id" r) resps)
  in
  Alcotest.(check (list int)) "each waiter got its own id"
    (List.init stormers (fun i -> i + 1))
    ids;
  match List.map (fun r -> Serve.Json.to_string (strip_id r)) resps with
  | [] -> Alcotest.fail "no storm responses"
  | first :: rest ->
    List.iter
      (fun s ->
        Alcotest.(check string) "one result fanned out to every waiter" first s)
      rest;
    first

let test_coalesce_storm () =
  disarm ();
  let stormers = 8 in
  let runs0 = Robust.Counters.get ~stage:"genashn" "solve_run" in
  let hits0 = Robust.Counters.get ~stage:"serve" "coalesce_hit" in
  let resps = run_storm ~stormers () in
  let runs = Robust.Counters.get ~stage:"genashn" "solve_run" - runs0 in
  Alcotest.(check int) "one solver run for the whole storm" 1 runs;
  Alcotest.(check int) "the other waiters coalesced" (stormers - 1)
    (Robust.Counters.get ~stage:"serve" "coalesce_hit" - hits0);
  let body = check_storm_fanout ~stormers resps in
  Alcotest.(check bool) "shared result is a success" true
    (contains body "\"ok\":true")

let test_coalesce_fault_fanout () =
  (* the leader's solve fails (unlimited injected non-convergence): every
     waiter must get the same typed error, and the engine must still
     drain — a failed flight may not strand its waiters *)
  let stormers = 6 in
  with_faults "ea_noconv" (fun () ->
      let x, y, z = ea_xyz in
      let storm_line id =
        Printf.sprintf
          "{\"v\":1,\"id\":%d,\"op\":\"pulses\",\"coords\":[%.17g,%.17g,%.17g]}" id x y
          z
      in
      let hits0 = Robust.Counters.get ~stage:"serve" "coalesce_hit" in
      let resps = run_storm ~storm_line ~stormers () in
      Alcotest.(check int) "waiters coalesced onto the failing flight"
        (stormers - 1)
        (Robust.Counters.get ~stage:"serve" "coalesce_hit" - hits0);
      let body = check_storm_fanout ~stormers resps in
      Alcotest.(check bool) "shared result is the typed failure" true
        (contains body "\"ok\":false");
      Alcotest.(check bool) "typed non_convergence" true
        (contains body "non_convergence"))

let test_coalesce_differential () =
  (* the same deterministic stream through a coalescing engine and a
     coalescing-disabled engine: responses must be bit-identical keyed by
     id — single-flight shares work, it must never change answers. The
     stream is all pulses/compile (deterministic payloads); stats is
     excluded because its live-counter snapshot is legitimately volatile. *)
  disarm ();
  let lines =
    List.concat_map
      (fun g ->
        List.init 3 (fun i ->
            Printf.sprintf "{\"v\":1,\"id\":\"%s-%d\",\"op\":\"pulses\",\"gate\":\"%s\"}" g i g))
      [ "cnot"; "cz"; "iswap"; "swap" ]
    @ List.init 4 (fun i ->
          Printf.sprintf
            "{\"v\":1,\"id\":\"c-%d\",\"op\":\"pulses\",\"coords\":[0.5,0.3,0.1]}" i)
    @ [ "{\"v\":1,\"id\":\"k-1\",\"op\":\"compile\",\"bench\":\"qaoa_8\",\"mode\":\"eff\"}" ]
  in
  let run coalesce =
    let eng = Serve.Engine.create ~workers:2 ~coalesce ~seed:1L () in
    let lock = Mutex.create () in
    let out = ref [] in
    List.iter
      (fun l ->
        Serve.Engine.submit eng (Serve.Protocol.parse_line l)
          ~respond:(fun r ->
            Mutex.lock lock;
            out :=
              ( Serve.Json.to_string
                  (Option.value ~default:Serve.Json.Null (Serve.Json.member "id" r)),
                Serve.Json.to_string r )
              :: !out;
            Mutex.unlock lock))
      lines;
    Serve.Engine.drain eng;
    List.sort compare !out
  in
  let on = run true and off = run false in
  Alcotest.(check int) "same cardinality" (List.length off) (List.length on);
  List.iter2
    (fun (k_off, r_off) (k_on, r_on) ->
      Alcotest.(check string) "same id set" k_off k_on;
      Alcotest.(check string)
        (Printf.sprintf "bit-identical response for id %s" k_off)
        r_off r_on)
    off on

(* ------------------------------------------- deadlines and supervision *)

let test_deadline_expired_skips_solver () =
  disarm ();
  (* [deadline_ms = 0] is expired on arrival: the engine must answer the
     typed error at dequeue and never invoke the solver *)
  let runs0 = Robust.Counters.get ~stage:"genashn" "solve_run" in
  let exceeded0 = Robust.Counters.get ~stage:"serve" "deadline_exceeded" in
  let summary, lines =
    run_server
      [
        "{\"v\":1,\"id\":1,\"op\":\"pulses\",\"coords\":[0.6,0.5,0.4],\"deadline_ms\":0}";
        "{\"v\":1,\"id\":2,\"op\":\"stats\"}";
      ]
  in
  Alcotest.(check int) "both answered" 2 (List.length lines);
  let l = find_by_id lines 1 in
  Alcotest.(check bool) "is an error response" true (contains l "\"ok\":false");
  Alcotest.(check bool) "typed deadline_exceeded" true (contains l "deadline_exceeded");
  Alcotest.(check bool) "stage named" true (contains l "serve.deadline");
  Alcotest.(check int) "solver never ran" 0
    (Robust.Counters.get ~stage:"genashn" "solve_run" - runs0);
  Alcotest.(check int) "drop counted" 1
    (Robust.Counters.get ~stage:"serve" "deadline_exceeded" - exceeded0);
  Alcotest.(check bool) "later request unaffected" true
    (contains (find_by_id lines 2) "\"ok\":true");
  Alcotest.(check int) "summary error count" 1 summary.Serve.Server.errors

let test_deadline_generous_and_invalid () =
  disarm ();
  (* a deadline with time to spare must not change the answer; a negative
     or non-numeric one is a parse error, not a silent default *)
  let _, lines =
    run_server
      [
        "{\"v\":1,\"id\":1,\"op\":\"pulses\",\"gate\":\"cnot\",\"deadline_ms\":60000}";
        "{\"v\":1,\"id\":2,\"op\":\"pulses\",\"gate\":\"cnot\",\"deadline_ms\":-5}";
        "{\"v\":1,\"id\":3,\"op\":\"pulses\",\"gate\":\"cnot\",\"deadline_ms\":\"soon\"}";
      ]
  in
  Alcotest.(check bool) "generous deadline answers ok" true
    (contains (find_by_id lines 1) "\"ok\":true");
  List.iter
    (fun id ->
      let l = find_by_id lines id in
      Alcotest.(check bool) "rejected as bad_request" true (contains l "bad_request");
      Alcotest.(check bool) "names deadline_ms" true (contains l "deadline_ms"))
    [ 2; 3 ];
  (* the engine's synchronous path enforces deadlines too *)
  let eng = Serve.Engine.create ~workers:1 ~seed:7L () in
  let resp =
    Serve.Engine.exec_once eng
      (Serve.Protocol.parse_line "{\"v\":1,\"id\":9,\"op\":\"stats\",\"deadline_ms\":0}")
  in
  Alcotest.(check bool) "exec_once honors deadline" true
    (contains (Serve.Json.to_string resp) "deadline_exceeded");
  Serve.Engine.drain eng

let test_worker_supervision () =
  (* two injected worker crashes: each in-flight request answers a typed
     internal_error, the supervisor restarts the worker (counted), and
     the restarted worker keeps serving through the drain *)
  with_faults "worker_crash:2" (fun () ->
      let restarts0 = Robust.Counters.get ~stage:"serve" "worker_restart" in
      (* distinct bodies: identical ones would coalesce into one flight
         and a single crash would (correctly) fan out to all of them *)
      let summary, lines =
        run_server
          [
            "{\"v\":1,\"id\":1,\"op\":\"pulses\",\"gate\":\"cnot\"}";
            "{\"v\":1,\"id\":2,\"op\":\"pulses\",\"gate\":\"cz\"}";
            "{\"v\":1,\"id\":3,\"op\":\"stats\"}";
          ]
      in
      Alcotest.(check int) "every request answered" 3 (List.length lines);
      List.iter
        (fun id ->
          let l = find_by_id lines id in
          Alcotest.(check bool)
            (Printf.sprintf "crash %d surfaced as internal_error" id)
            true
            (contains l "internal_error" && contains l "worker crashed"))
        [ 1; 2 ];
      Alcotest.(check bool) "restarted worker serves" true
        (contains (find_by_id lines 3) "\"ok\":true");
      Alcotest.(check int) "restarts counted" 2
        (Robust.Counters.get ~stage:"serve" "worker_restart" - restarts0);
      Alcotest.(check int) "clean drain" 3 summary.Serve.Server.served)

let test_coalesce_drain_waiters () =
  disarm ();
  (* K duplicate requests are queued (and coalesced onto one flight)
     behind plugs when the shutdown arrives: the drain must execute the
     leader once and fan its response to every waiter — a draining server
     may not strand coalesced waiters *)
  let stormers = 6 in
  let runs0 = Robust.Counters.get ~stage:"genashn" "solve_run" in
  let hits0 = Robust.Counters.get ~stage:"serve" "coalesce_hit" in
  let lines =
    plug_lines
    @ List.init stormers (fun i -> storm_line (i + 1))
    @ [ "{\"v\":1,\"id\":50,\"op\":\"shutdown\"}" ]
  in
  let summary, resps = run_server lines in
  Alcotest.(check int) "plugs + waiters + shutdown all answered"
    (List.length plug_lines + stormers + 1)
    (List.length resps);
  Alcotest.(check int) "one solver run for the whole storm" 1
    (Robust.Counters.get ~stage:"genashn" "solve_run" - runs0);
  Alcotest.(check int) "waiters coalesced" (stormers - 1)
    (Robust.Counters.get ~stage:"serve" "coalesce_hit" - hits0);
  let bodies =
    List.init stormers (fun i ->
        match Serve.Json.parse (find_by_id resps (i + 1)) with
        | Ok j -> Serve.Json.to_string (strip_id j)
        | Error e -> Alcotest.failf "waiter %d response not JSON: %s" (i + 1) e)
  in
  (match bodies with
  | first :: rest ->
    Alcotest.(check bool) "leader's result is a success" true
      (contains first "\"ok\":true");
    List.iter
      (fun b -> Alcotest.(check string) "identical fan-out under drain" first b)
      rest
  | [] -> Alcotest.fail "no waiter responses");
  Alcotest.(check int) "summary served everything" (List.length resps)
    summary.Serve.Server.served

let () =
  disarm ();
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_roundtrip;
          Alcotest.test_case "unicode" `Quick test_json_unicode;
          Alcotest.test_case "malformed" `Quick test_json_malformed;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "property round trip" `Quick test_json_property_roundtrip;
          Alcotest.test_case "rejection corpus" `Quick test_json_rejection_corpus;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "parse ok" `Quick test_protocol_parse_ok;
          Alcotest.test_case "parse errors" `Quick test_protocol_parse_errors;
          Alcotest.test_case "custom pass plans" `Quick test_protocol_passes;
          Alcotest.test_case "version negotiation" `Quick test_protocol_version;
          Alcotest.test_case "frame cap" `Quick test_protocol_frame_cap;
          Alcotest.test_case "response version" `Quick test_response_carries_version;
        ] );
      ( "server",
        [
          Alcotest.test_case "happy path" `Quick test_server_happy_path;
          Alcotest.test_case "version negotiation" `Quick test_server_version_negotiation;
          Alcotest.test_case "stats obs block" `Quick test_server_stats_obs_block;
          Alcotest.test_case "malformed request" `Quick test_server_malformed_request;
          Alcotest.test_case "over budget" `Quick test_server_over_budget;
          Alcotest.test_case "solver fault" `Quick test_server_solver_fault;
          Alcotest.test_case "shutdown drains" `Quick test_server_shutdown_drains;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "duplicate storm" `Quick test_coalesce_storm;
          Alcotest.test_case "fault fan-out" `Quick test_coalesce_fault_fanout;
          Alcotest.test_case "differential vs uncoalesced" `Quick
            test_coalesce_differential;
          Alcotest.test_case "drain fans out to waiters" `Quick
            test_coalesce_drain_waiters;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "expired deadline skips solver" `Quick
            test_deadline_expired_skips_solver;
          Alcotest.test_case "deadline bounds" `Quick
            test_deadline_generous_and_invalid;
          Alcotest.test_case "worker supervision" `Quick test_worker_supervision;
        ] );
    ]
