(* Differential oracle suite for the nanopass pipeline: every prefix of
   every default plan must stay statevector-equivalent to the source
   program on a small corpus (CCX network, QFT-4, random 2Q/3Q qcheck
   circuits, a Pauli program); plus pass reordering (peephole on either
   side of compact) and a deliberately-broken pass the oracle must
   catch. *)

open Numerics
open Compiler

let seed = 20260809L

(* corpus: small structured circuits (shapes shared with test_compiler) *)
let toffoli_chain =
  Circuit.create 4
    [
      Gate.h 0;
      Gate.ccx 0 1 2;
      Gate.cx 2 3;
      Gate.ccx 1 2 3;
      Gate.x 1;
      Gate.ccx 0 1 2;
    ]

let qft4 =
  let gates = ref [] in
  let n = 4 in
  for i = 0 to n - 1 do
    gates := Gate.h i :: !gates;
    for j = i + 1 to n - 1 do
      gates := Gate.cphase j i (Float.pi /. (2.0 ** float_of_int (j - i))) :: !gates
    done
  done;
  Circuit.create n (List.rev !gates)

let pauli_prog =
  {
    Phoenix.n = 3;
    terms =
      [
        { Phoenix.pauli = Quantum.Pauli.of_string "ZZI"; angle = 0.7 };
        { Phoenix.pauli = Quantum.Pauli.of_string "IZZ"; angle = 0.4 };
        { Phoenix.pauli = Quantum.Pauli.of_string "ZZI"; angle = -0.2 };
        { Phoenix.pauli = Quantum.Pauli.of_string "XIX"; angle = 0.9 };
      ];
  }

let random_circuit seed =
  let rng = Rng.create seed in
  let n = 3 + (Int64.to_int seed mod 2) in
  let gates =
    List.init 8 (fun _ ->
        let a = Rng.int rng n in
        let b = (a + 1 + Rng.int rng (n - 1)) mod n in
        match Rng.int rng 5 with
        | 0 -> Gate.h a
        | 1 -> Gate.t a
        | 2 -> Gate.cx a b
        | 3 -> Gate.rz a 0.37
        | _ ->
          let c = (b + 1 + Rng.int rng (n - 2)) mod n in
          let c = if c = a || c = b then (max a (max b c) + 1) mod n else c in
          if c = a || c = b then Gate.cx a b else Gate.ccx a b c)
  in
  Circuit.create n gates

let corpus =
  [
    ("toffoli_chain", Pass.Gates toffoli_chain);
    ("qft4", Pass.Gates qft4);
    ("pauli", Pass.Pauli pauli_prog);
  ]

let check_ok what = function
  | Ok (Pass.Checked | Pass.Skipped _) -> ()
  | Error msg -> Alcotest.failf "%s: oracle rejected: %s" what msg

(* run a plan pass by pass, checking the per-pass oracle against the
   source after every prefix — the differential harness of the issue *)
let run_prefix_oracle ~plan_name plan source =
  let ctx = Pass.make_ctx (Rng.create seed) in
  let reference = Pass.Source source in
  let final =
    List.fold_left
      (fun ir (p : Pass.t) ->
        let ir', (stat : Passes.pass_stat) = Passes.run_pass ctx ir p in
        if stat.Passes.ran then
          check_ok
            (Printf.sprintf "%s prefix ..%s" plan_name p.Pass.name)
            (Pass.check_equiv p.Pass.oracle ~reference ~candidate:ir');
        ir')
      reference plan.Passes.passes
  in
  match Passes.output_of_ir ctx final with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: no output: %s" plan_name (Robust.Err.to_string e)

let test_prefix_oracle () =
  List.iter
    (fun mode ->
      let plan = Passes.plan_of_mode mode in
      List.iter
        (fun (name, source) ->
          run_prefix_oracle
            ~plan_name:(Printf.sprintf "%s/%s" plan.Passes.plan_name name)
            plan source)
        corpus)
    [ Passes.Eff; Passes.Full; Passes.Nc ]

(* the new peephole pass must fuse the commuting ZZ sandwich that
   fuse_2q alone cannot (an interposed gate on a shared wire) *)
let test_peephole_fuses_commuting () =
  let c =
    Circuit.create 3 [ Gate.rzz 0 1 0.3; Gate.rzz 1 2 0.5; Gate.rzz 0 1 0.4 ]
  in
  let out = Peephole.run c in
  Alcotest.(check bool)
    "peephole reduced the sandwich" true
    (Circuit.count_2q out < Circuit.count_2q c);
  check_ok "peephole semantics"
    (Pass.check_equiv Pass.default_oracle ~reference:(Pass.Su4 c)
       ~candidate:(Pass.Su4 out))

(* peephole must leave non-commuting interposers alone *)
let test_peephole_respects_noncommuting () =
  let c =
    Circuit.create 3 [ Gate.rzz 0 1 0.3; Gate.cx 1 2; Gate.h 1; Gate.rzz 0 1 0.4 ]
  in
  let out = Peephole.run c in
  check_ok "peephole non-commuting semantics"
    (Pass.check_equiv Pass.default_oracle ~reference:(Pass.Su4 c)
       ~candidate:(Pass.Su4 out))

(* reordering: peephole before or after compact — both legal plans, both
   oracle-clean (the point of passes being first-class values) *)
let test_reordering () =
  List.iter
    (fun names ->
      match Passes.of_names ~name:"reorder" names with
      | Error e -> Alcotest.failf "of_names: %s" (Robust.Err.to_string e)
      | Ok plan ->
        run_prefix_oracle
          ~plan_name:(String.concat "," names)
          plan (Pass.Gates toffoli_chain))
    [
      [ "lower_3q"; "template"; "peephole"; "compact"; "mirroring" ];
      [ "lower_3q"; "template"; "compact"; "peephole"; "mirroring" ];
    ]

(* a deliberately broken pass (drops the last 2Q gate): the oracle must
   catch it — this is the negative control for the whole harness *)
let broken_pass =
  {
    Pass.name = "broken_drop";
    doc = "negative control: silently drops the last 2Q gate";
    applies = (function Pass.Su4 _ -> true | _ -> false);
    oracle = Pass.default_oracle;
    run =
      (fun _ctx -> function
        | Pass.Su4 c ->
          let rec drop_last = function
            | [] -> []
            | [ (g : Gate.t) ] -> if Gate.is_2q g then [] else [ g ]
            | g :: rest -> g :: drop_last rest
          in
          Pass.Su4 (Circuit.create c.Circuit.n (drop_last c.Circuit.gates))
        | ir -> ir);
  }

let test_broken_pass_caught () =
  let plan =
    { Passes.plan_name = "broken"; passes = [ Passes.lower_3q; Passes.template; broken_pass ] }
  in
  let ctx = Pass.make_ctx (Rng.create seed) in
  match Passes.run_plan ctx plan (Pass.Source (Pass.Gates qft4)) with
  | Error e -> Alcotest.failf "run_plan: %s" (Robust.Err.to_string e)
  | Ok (ir, _) -> (
    match
      Pass.check_equiv broken_pass.Pass.oracle
        ~reference:(Pass.Source (Pass.Gates qft4)) ~candidate:ir
    with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "oracle accepted a gate-dropping pass")

(* slicing: stop_after leaves the named pass's IR form; unknown names in
   any position are typed errors naming the registry *)
let test_slicing () =
  let ctx = Pass.make_ctx (Rng.create seed) in
  let plan = Passes.plan_of_mode Passes.Eff in
  (match
     Passes.run_plan ~stop_after:"template" ctx plan
       (Pass.Source (Pass.Gates toffoli_chain))
   with
  | Ok (Pass.Su4 c, stats) ->
    Alcotest.(check bool)
      "su4+1q only" true
      (List.for_all (fun (g : Gate.t) -> Gate.arity g <= 2) c.Circuit.gates);
    Alcotest.(check int) "two executed stats" 2
      (List.length (List.filter (fun (s : Passes.pass_stat) -> s.Passes.ran) stats))
  | Ok (ir, _) -> Alcotest.failf "expected su4 IR, got %s" (Pass.ir_form ir)
  | Error e -> Alcotest.failf "run_plan: %s" (Robust.Err.to_string e));
  (match Passes.run_plan ~start_from:"nope" ctx plan (Pass.Source (Pass.Gates qft4)) with
  | Error e ->
    let msg = Robust.Err.to_string e in
    let contains sub =
      let ls = String.length msg and lb = String.length sub in
      let rec go i = i + lb <= ls && (String.sub msg i lb = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "start_from error names the registry" true
      (List.for_all contains Passes.known_names)
  | Ok _ -> Alcotest.fail "start_from accepted an unknown pass");
  match Passes.of_names [ "lower_3q"; "wat" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_names accepted an unknown pass"

(* default plans must reproduce the historical fused pipeline exactly *)
let test_plan_matches_pipeline () =
  List.iter
    (fun (mode, pmode) ->
      let out_plan =
        fst
          (Passes.compile_plan_exn ~plan:(Passes.plan_of_mode mode)
             (Rng.create 7L) (Pass.Gates toffoli_chain))
      in
      let out_pipe = Pipeline.compile ~mode:pmode (Rng.create 7L) (Pipeline.Gates toffoli_chain) in
      Alcotest.(check int)
        "same 2q count"
        (Circuit.count_2q out_pipe.Pipeline.circuit)
        (Circuit.count_2q out_plan.Passes.circuit);
      Alcotest.(check (array int))
        "same mapping" out_pipe.Pipeline.final_mapping out_plan.Passes.final_mapping)
    [ (Passes.Eff, Pipeline.Eff); (Passes.Full, Pipeline.Full) ]

let props =
  let arb_seed = QCheck.make QCheck.Gen.(map Int64.of_int (int_bound 1000000)) in
  [
    QCheck.Test.make ~count:8 ~name:"eff plan prefixes preserve random circuits"
      arb_seed (fun s ->
        run_prefix_oracle ~plan_name:"eff/random"
          (Passes.plan_of_mode Passes.Eff)
          (Pass.Gates (random_circuit s));
        true);
    QCheck.Test.make ~count:4 ~name:"peephole preserves random circuits" arb_seed
      (fun s ->
        let c = Blocks.fuse_2q (Decomp.lower_to_cx (random_circuit s)) in
        let out = Peephole.run c in
        Circuit.count_2q out <= Circuit.count_2q c
        &&
        match
          Pass.check_equiv Pass.default_oracle ~reference:(Pass.Su4 c)
            ~candidate:(Pass.Su4 out)
        with
        | Ok _ -> true
        | Error _ -> false);
  ]

let () =
  Alcotest.run "passes"
    [
      ( "oracle",
        [
          Alcotest.test_case "prefixes of all default plans" `Slow test_prefix_oracle;
          Alcotest.test_case "broken pass is caught" `Quick test_broken_pass_caught;
        ] );
      ( "peephole",
        [
          Alcotest.test_case "fuses through commuting gates" `Quick
            test_peephole_fuses_commuting;
          Alcotest.test_case "respects non-commuting gates" `Quick
            test_peephole_respects_noncommuting;
          Alcotest.test_case "reorders with compact" `Slow test_reordering;
        ] );
      ( "plans",
        [
          Alcotest.test_case "slicing and strict names" `Quick test_slicing;
          Alcotest.test_case "default plans match pipeline" `Slow
            test_plan_matches_pipeline;
        ] );
      ("props", List.map (QCheck_alcotest.to_alcotest ~long:false) props);
    ]
