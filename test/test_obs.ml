(* lib/obs: histogram bucket edges, span nesting and exception unwind,
   the disabled-sink no-op contract, recorder ring bounds, and golden
   Chrome-trace / Prometheus exports (the Chrome trace must also load in
   Serve.Json, the same parser the server and CI use). *)

let contains s sub =
  let n = String.length sub and len = String.length s in
  let rec go i = i + n <= len && (String.sub s i n = sub || go (i + 1)) in
  go 0

let clean () =
  Obs.Sink.uninstall ();
  Obs.Hist.reset ();
  Obs.Metric.reset ()

(* a sink that discards events: enables the gated paths (Metric, Span
   timestamps) without buffering anything *)
let null_sink = { Obs.Sink.on_span = (fun _ -> ()) }

(* ------------------------------------------------------- bucket edges *)

let test_bucket_edges () =
  let lo = 1 lsl Obs.Hist.first_exp in
  Alcotest.(check int) "first bound" lo (Obs.Hist.bucket_upper_ns 0);
  (* inclusive upper bounds, Prometheus-style: d = bound stays in the
     bucket, d = bound + 1 spills into the next *)
  Alcotest.(check int) "zero duration" 0 (Obs.Hist.bucket_index 0);
  Alcotest.(check int) "negative clamps" 0 (Obs.Hist.bucket_index (-5));
  Alcotest.(check int) "1ns" 0 (Obs.Hist.bucket_index 1);
  Alcotest.(check int) "at first bound" 0 (Obs.Hist.bucket_index lo);
  Alcotest.(check int) "just past first bound" 1 (Obs.Hist.bucket_index (lo + 1));
  for j = 0 to Obs.Hist.finite_buckets - 1 do
    let b = Obs.Hist.bucket_upper_ns j in
    Alcotest.(check int) (Printf.sprintf "bound %d inclusive" j) j
      (Obs.Hist.bucket_index b);
    Alcotest.(check int)
      (Printf.sprintf "bound %d + 1 spills" j)
      (j + 1)
      (Obs.Hist.bucket_index (b + 1))
  done;
  Alcotest.(check int) "max_int overflows" Obs.Hist.finite_buckets
    (Obs.Hist.bucket_index max_int);
  Alcotest.check_raises "overflow bucket has no bound"
    (Invalid_argument "Obs.Hist.bucket_upper_ns")
    (fun () -> ignore (Obs.Hist.bucket_upper_ns Obs.Hist.finite_buckets))

let test_hist_observe_quantile () =
  clean ();
  let lo = 1 lsl Obs.Hist.first_exp in
  Obs.Hist.observe ~stage:"t" ~name:"x" (lo - 24);
  Obs.Hist.observe ~stage:"t" ~name:"x" (lo + 476);
  Obs.Hist.observe ~stage:"t" ~name:"x" ((2 * lo) + 952);
  match Obs.Hist.snapshot () with
  | [ s ] ->
    Alcotest.(check string) "stage" "t" s.Obs.Hist.stage;
    Alcotest.(check string) "name" "x" s.Obs.Hist.name;
    Alcotest.(check int) "count" 3 s.Obs.Hist.count;
    Alcotest.(check int) "sum" ((4 * lo) + 1404) s.Obs.Hist.sum_ns;
    Alcotest.(check int) "counts length"
      (Obs.Hist.finite_buckets + 1)
      (Array.length s.Obs.Hist.counts);
    Alcotest.(check int) "bucket 0" 1 s.Obs.Hist.counts.(0);
    Alcotest.(check int) "bucket 1" 1 s.Obs.Hist.counts.(1);
    Alcotest.(check int) "bucket 2" 1 s.Obs.Hist.counts.(2);
    (* quantile reports the inclusive bound of the bucket where the
       cumulative count crosses q * count *)
    Alcotest.(check (float 0.0)) "p50" (float_of_int (2 * lo)) (Obs.Hist.quantile s 0.5);
    Alcotest.(check (float 0.0)) "p100" (float_of_int (4 * lo)) (Obs.Hist.quantile s 1.0);
    clean ()
  | series ->
    Alcotest.failf "expected one series, got %d" (List.length series)

(* ------------------------------------------------ span nesting/unwind *)

let test_span_nesting () =
  clean ();
  let (), r =
    Obs.Recorder.with_recorder (fun () ->
        Obs.Span.with_ ~stage:"t" ~name:"outer" (fun () ->
            Alcotest.(check int) "depth inside outer" 1 (Obs.Span.depth ());
            Obs.Span.with_ ~stage:"t" ~name:"inner" (fun () ->
                Alcotest.(check int) "depth inside inner" 2 (Obs.Span.depth ())));
        Alcotest.(check int) "depth unwound" 0 (Obs.Span.depth ()))
  in
  (match Obs.Recorder.events r with
  | [ inner; outer ] ->
    (* inner completes first, so the ring holds it first *)
    Alcotest.(check string) "inner name" "inner" inner.Obs.Sink.name;
    Alcotest.(check int) "inner depth" 1 inner.Obs.Sink.depth;
    Alcotest.(check string) "outer name" "outer" outer.Obs.Sink.name;
    Alcotest.(check int) "outer depth" 0 outer.Obs.Sink.depth;
    Alcotest.(check bool) "outer starts first" true
      (outer.Obs.Sink.t0_ns <= inner.Obs.Sink.t0_ns);
    Alcotest.(check bool) "durations non-negative" true
      (inner.Obs.Sink.dur_ns >= 0 && outer.Obs.Sink.dur_ns >= 0)
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  clean ()

let test_span_unwind_on_exception () =
  clean ();
  let (), r =
    Obs.Recorder.with_recorder (fun () ->
        (try Obs.Span.with_ ~stage:"t" ~name:"raiser" (fun () -> failwith "boom")
         with Failure _ -> ());
        Alcotest.(check int) "depth restored after raise" 0 (Obs.Span.depth ());
        (* the depth slot is reusable after the unwind *)
        Obs.Span.with_ ~stage:"t" ~name:"after" (fun () ->
            Alcotest.(check int) "depth after raise" 1 (Obs.Span.depth ())))
  in
  let names = List.map (fun e -> e.Obs.Sink.name) (Obs.Recorder.events r) in
  Alcotest.(check (list string)) "raising span still emitted" [ "raiser"; "after" ]
    names;
  clean ()

(* --------------------------------------------------- disabled = no-op *)

let test_disabled_noop () =
  clean ();
  Alcotest.(check bool) "no sink" false (Obs.Sink.enabled ());
  Alcotest.(check int) "now_ns sentinel" 0 (Obs.Span.now_ns ());
  (* emit with the sentinel t0 must not fabricate a span even if a sink
     appears later *)
  Obs.Span.emit ~stage:"t" ~name:"ghost" ~t0:0;
  Alcotest.(check int) "with_ is transparent" 41
    (Obs.Span.with_ ~stage:"t" ~name:"quiet" (fun () -> 41));
  Obs.Metric.incr ~stage:"t" "c";
  Obs.Metric.add ~stage:"t" "c" 10;
  Obs.Metric.set_gauge ~stage:"t" "g" 3.5;
  Alcotest.(check int) "counter stays 0" 0 (Obs.Metric.get ~stage:"t" "c");
  Alcotest.(check bool) "gauge unset" true (Obs.Metric.get_gauge ~stage:"t" "g" = None);
  Alcotest.(check int) "no series recorded" 0 (List.length (Obs.Hist.snapshot ()));
  Alcotest.(check string) "prometheus empty" "" (Obs.Export.prometheus ())

let test_metric_enabled () =
  clean ();
  Obs.Sink.install null_sink;
  Obs.Metric.incr ~stage:"t" "c";
  Obs.Metric.add ~stage:"t" "c" 2;
  Obs.Metric.set_gauge ~stage:"t" "g" 2.5;
  Obs.Metric.set_gauge ~stage:"t" "g" 4.5;
  Alcotest.(check int) "counter" 3 (Obs.Metric.get ~stage:"t" "c");
  Alcotest.(check bool) "gauge last write wins" true
    (Obs.Metric.get_gauge ~stage:"t" "g" = Some 4.5);
  clean ()

(* ------------------------------------------------------ recorder ring *)

let test_recorder_ring () =
  clean ();
  let (), r =
    Obs.Recorder.with_recorder ~capacity:4 (fun () ->
        for i = 1 to 6 do
          Obs.Span.with_ ~stage:"t" ~name:(Printf.sprintf "s%d" i) (fun () -> ())
        done)
  in
  Alcotest.(check int) "event_count is total pushed" 6 (Obs.Recorder.event_count r);
  Alcotest.(check int) "dropped oldest" 2 (Obs.Recorder.dropped r);
  let names = List.map (fun e -> e.Obs.Sink.name) (Obs.Recorder.events r) in
  Alcotest.(check int) "ring keeps newest" 4 (List.length names);
  Alcotest.(check (list string)) "oldest-first order" [ "s3"; "s4"; "s5"; "s6" ] names;
  (* aggregation is not bounded by the ring *)
  (match Obs.Hist.snapshot () with
  | series ->
    let total = List.fold_left (fun acc s -> acc + s.Obs.Hist.count) 0 series in
    Alcotest.(check int) "hist saw all 6" 6 total);
  clean ()

let test_with_recorder_restores_sink () =
  clean ();
  Obs.Sink.install null_sink;
  let v, _ = Obs.Recorder.with_recorder (fun () -> 7) in
  Alcotest.(check int) "result" 7 v;
  Alcotest.(check bool) "previous sink restored" true
    (match Obs.Sink.installed () with
    | Some s -> s == null_sink
    | None -> false);
  clean ()

(* ---------------------------------------------------- golden exports *)

let test_chrome_trace_golden () =
  let ev stage name t0 dur depth domain =
    { Obs.Sink.stage; name; t0_ns = t0; dur_ns = dur; depth; domain }
  in
  let out =
    Obs.Export.chrome_trace [ ev "s" "a" 1000 2500 0 0; ev "s" "b" 2000 500 1 3 ]
  in
  (* byte-exact: ts is rebased to the earliest event, ns -> us *)
  let expected =
    "{\"traceEvents\":[{\"name\":\"a\",\"cat\":\"s\",\"ph\":\"X\",\"ts\":0.000,\
     \"dur\":2.500,\"pid\":1,\"tid\":0,\"args\":{\"depth\":0}},{\"name\":\"b\",\
     \"cat\":\"s\",\"ph\":\"X\",\"ts\":1.000,\"dur\":0.500,\"pid\":1,\"tid\":3,\
     \"args\":{\"depth\":1}}],\"displayTimeUnit\":\"ms\"}"
  in
  Alcotest.(check string) "golden chrome trace" expected out;
  (* and it must load in the JSON parser the server ships *)
  match Serve.Json.parse out with
  | Error e -> Alcotest.failf "chrome trace does not parse: %s" e
  | Ok json -> (
    match Serve.Json.mem_arr "traceEvents" json with
    | Some [ a; b ] ->
      Alcotest.(check bool) "event a name" true (Serve.Json.mem_str "name" a = Some "a");
      Alcotest.(check bool) "event b ph" true (Serve.Json.mem_str "ph" b = Some "X")
    | _ -> Alcotest.fail "expected 2 traceEvents")

let test_chrome_trace_escaping () =
  let out =
    Obs.Export.chrome_trace
      [ { Obs.Sink.stage = "s\"t"; name = "a\nb"; t0_ns = 0; dur_ns = 1; depth = 0;
          domain = 0 } ]
  in
  Alcotest.(check bool) "escaped quote" true (contains out "\"cat\":\"s\\\"t\"");
  Alcotest.(check bool) "escaped newline" true (contains out "\"name\":\"a\\nb\"");
  match Serve.Json.parse out with
  | Error e -> Alcotest.failf "escaped trace does not parse: %s" e
  | Ok _ -> ()

let test_prometheus_golden () =
  clean ();
  Obs.Sink.install null_sink;
  let lo = 1 lsl Obs.Hist.first_exp in
  Obs.Hist.observe ~stage:"t" ~name:"x" lo;
  Obs.Hist.observe ~stage:"t" ~name:"x" (lo + 476);
  Obs.Metric.incr ~stage:"t" "c";
  Obs.Metric.add ~stage:"t" "c" 2;
  Obs.Metric.set_gauge ~stage:"t" "g" 2.5;
  let out = Obs.Export.prometheus () in
  clean ();
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "has %S" line) true (contains out line))
    [ "# TYPE reqisc_span_duration_seconds histogram";
      (* cumulative counts with inclusive le bounds *)
      "reqisc_span_duration_seconds_bucket{stage=\"t\",name=\"x\",le=\"1.024e-06\"} 1";
      "reqisc_span_duration_seconds_bucket{stage=\"t\",name=\"x\",le=\"2.048e-06\"} 2";
      "reqisc_span_duration_seconds_bucket{stage=\"t\",name=\"x\",le=\"+Inf\"} 2";
      "reqisc_span_duration_seconds_sum{stage=\"t\",name=\"x\"} 2.524e-06";
      "reqisc_span_duration_seconds_count{stage=\"t\",name=\"x\"} 2";
      "# TYPE reqisc_counter_total counter";
      "reqisc_counter_total{stage=\"t\",name=\"c\"} 3";
      "# TYPE reqisc_gauge gauge";
      "reqisc_gauge{stage=\"t\",name=\"g\"} 2.5" ]

let test_snapshot_json_parses () =
  clean ();
  Obs.Sink.install null_sink;
  Obs.Hist.observe ~stage:"t" ~name:"x" 5000;
  Obs.Metric.incr ~stage:"t" "c";
  Obs.Metric.set_gauge ~stage:"t" "g" 1.5;
  let out = Obs.Export.snapshot_json () in
  clean ();
  match Serve.Json.parse out with
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e
  | Ok json ->
    (match Serve.Json.member "spans" json with
    | Some (Serve.Json.Obj [ (key, span) ]) ->
      Alcotest.(check string) "span key" "t.x" key;
      Alcotest.(check bool) "span count" true (Serve.Json.mem_num "count" span = Some 1.0)
    | _ -> Alcotest.fail "expected one span entry");
    (match Serve.Json.member "counters" json with
    | Some (Serve.Json.Obj [ (key, Serve.Json.Num v) ]) ->
      Alcotest.(check string) "counter key" "t.c" key;
      Alcotest.(check (float 0.0)) "counter value" 1.0 v
    | _ -> Alcotest.fail "expected one counter entry");
    match Serve.Json.member "gauges" json with
    | Some (Serve.Json.Obj [ (key, Serve.Json.Num v) ]) ->
      Alcotest.(check string) "gauge key" "t.g" key;
      Alcotest.(check (float 0.0)) "gauge value" 1.5 v
    | _ -> Alcotest.fail "expected one gauge entry"

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
          Alcotest.test_case "observe + quantile" `Quick test_hist_observe_quantile;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting depths" `Quick test_span_nesting;
          Alcotest.test_case "unwind on exception" `Quick test_span_unwind_on_exception;
        ] );
      ( "sink",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "metrics move when enabled" `Quick test_metric_enabled;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "bounded ring" `Quick test_recorder_ring;
          Alcotest.test_case "restores previous sink" `Quick
            test_with_recorder_restores_sink;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace golden" `Quick test_chrome_trace_golden;
          Alcotest.test_case "chrome trace escaping" `Quick test_chrome_trace_escaping;
          Alcotest.test_case "prometheus golden" `Quick test_prometheus_golden;
          Alcotest.test_case "snapshot json parses" `Quick test_snapshot_json_parses;
        ] );
    ]
