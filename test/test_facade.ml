(* Facade-level and consistency tests: the public Reqisc API, face-equation
   invariants of the duration planner, and format edge cases. *)

open Numerics

let rng = Rng.create 60606L

(* ----------------------------------------------------------------- facade *)

(* the facade is result-first: unwrap typed errors into test failures *)
let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Robust.Err.to_string e)

let test_facade_compile_and_pulse () =
  let circuit = Circuit.create 3 [ Gate.h 0; Gate.ccx 0 1 2; Gate.cx 1 2 ] in
  let out = ok (Reqisc.compile ~mode:Reqisc.Eff (Rng.create 1L) circuit) in
  Alcotest.(check bool) "produced gates" true (Circuit.count_2q out.Reqisc.circuit > 0);
  let instrs = ok (Reqisc.pulses Reqisc.xy_coupling out.Reqisc.circuit) in
  Alcotest.(check int) "pulse per gate" (Circuit.count_2q out.Reqisc.circuit)
    (List.length instrs);
  let r = Reqisc.metrics (Compiler.Metrics.Su4_isa Reqisc.xy_coupling) out.Reqisc.circuit in
  Alcotest.(check bool) "positive duration" true (r.Compiler.Metrics.duration > 0.0)

let test_facade_exn_matches_result () =
  (* the raising form is the same computation as the result form *)
  let circuit = Circuit.create 2 [ Gate.cx 0 1 ] in
  let a = ok (Reqisc.compile ~mode:Reqisc.Eff (Rng.create 9L) circuit) in
  let b = Reqisc.compile_exn ~mode:Reqisc.Eff (Rng.create 9L) circuit in
  Alcotest.(check int) "same 2q count" (Circuit.count_2q a.Reqisc.circuit)
    (Circuit.count_2q b.Reqisc.circuit)

let test_facade_route () =
  let circuit = Circuit.create 4 [ Gate.cx 0 3; Gate.cx 1 2; Gate.cx 0 2 ] in
  let out = ok (Reqisc.compile (Rng.create 2L) circuit) in
  let topo = Compiler.Routing.chain 4 in
  let routed = ok (Reqisc.route (Rng.create 3L) topo out.Reqisc.circuit) in
  List.iter
    (fun (g : Gate.t) ->
      if Gate.is_2q g then
        Alcotest.(check bool) "adjacent" true
          (topo.Compiler.Routing.dist.(g.qubits.(0)).(g.qubits.(1)) = 1))
    routed.Compiler.Routing.circuit.Circuit.gates

let test_facade_route_too_wide () =
  (* a circuit wider than the device is a typed error, not an exception *)
  let circuit = Circuit.create 5 [ Gate.cx 0 4 ] in
  let topo = Compiler.Routing.chain 3 in
  match Reqisc.route (Rng.create 8L) topo circuit with
  | Ok _ -> Alcotest.fail "expected a routing error"
  | Error e ->
    Alcotest.(check string) "stage" "compiler.routing" (Robust.Err.stage e);
    Alcotest.(check string) "kind" "ill_conditioned" (Robust.Err.kind e)

let test_facade_pauli () =
  let p =
    Compiler.Phoenix.
      { n = 2; terms = [ { pauli = Quantum.Pauli.of_string "XX"; angle = 0.5 } ] }
  in
  let out = ok (Reqisc.compile_pauli (Rng.create 4L) p) in
  Alcotest.(check int) "one su4" 1 (Circuit.count_2q out.Reqisc.circuit)

(* ----------------------------------------------------- planner invariants *)

let test_face_equation_holds () =
  (* the chosen face's defining equation is tight at the optimal time *)
  for _ = 1 to 30 do
    let h = Microarch.Coupling.random rng in
    let c = Weyl.Kak.coords_of (Quantum.Haar.su4 rng) in
    let plan = Microarch.Tau.plan h c in
    let x, y, z = plan.Microarch.Tau.target_plus in
    let tau = plan.Microarch.Tau.tau in
    let lhs =
      match plan.Microarch.Tau.subscheme with
      | Microarch.Tau.ND -> x /. h.Microarch.Coupling.a
      | Microarch.Tau.EA_same ->
        (x +. y +. z)
        /. (h.Microarch.Coupling.a +. h.Microarch.Coupling.b +. h.Microarch.Coupling.c)
      | Microarch.Tau.EA_opposite ->
        (x +. y -. z)
        /. (h.Microarch.Coupling.a +. h.Microarch.Coupling.b -. h.Microarch.Coupling.c)
    in
    Alcotest.(check bool)
      (Printf.sprintf "face tight (lhs %.12g tau %.12g)" lhs tau)
      true
      (Float.abs (lhs -. tau) < 1e-9 *. (1.0 +. tau))
  done

let test_synthesis_tau_definition () =
  let h = Microarch.Coupling.xy ~g:1.0 in
  let c = Weyl.Coords.make 0.5 0.3 0.1 in
  let t = Microarch.Duration.synthesis_tau h Microarch.Duration.Sqisw c in
  let expected =
    float_of_int (Microarch.Duration.gates_needed Microarch.Duration.Sqisw c)
    *. Microarch.Duration.basis_gate_tau h Microarch.Duration.Sqisw
  in
  Alcotest.(check (float 1e-12)) "definition" expected t

(* --------------------------------------------------------------- formats *)

let test_qasm_three_qubit_unitary () =
  let g = Gate.make "blk" [| 0; 2; 1 |] Quantum.Gates.ccx in
  let c = Circuit.create 3 [ g ] in
  let c' = Qasm.of_string (Qasm.to_string c) in
  Alcotest.(check bool) "roundtrip 3q unitary" true
    (Mat.allclose_up_to_phase ~tol:1e-10 (Circuit.unitary c) (Circuit.unitary c'))

let test_big_suite_instantiates () =
  let big = Benchmarks.Suite.suite ~big:true () in
  Alcotest.(check bool) "bigger than base" true
    (List.length big > List.length (Benchmarks.Suite.suite ()));
  List.iter
    (fun (b : Benchmarks.Suite.bench) ->
      match b.program with
      | Compiler.Pipeline.Gates c ->
        Alcotest.(check bool) (b.name ^ " nonempty") true (Circuit.gate_count c > 0)
      | Compiler.Pipeline.Pauli p ->
        Alcotest.(check bool) (b.name ^ " nonempty") true
          (List.length p.Compiler.Phoenix.terms > 0))
    big

let () =
  Alcotest.run "facade"
    [
      ( "reqisc",
        [
          Alcotest.test_case "compile + pulses" `Slow test_facade_compile_and_pulse;
          Alcotest.test_case "exn matches result" `Quick test_facade_exn_matches_result;
          Alcotest.test_case "route" `Quick test_facade_route;
          Alcotest.test_case "route too wide" `Quick test_facade_route_too_wide;
          Alcotest.test_case "pauli" `Quick test_facade_pauli;
        ] );
      ( "planner",
        [
          Alcotest.test_case "face equation" `Quick test_face_equation_holds;
          Alcotest.test_case "synthesis tau" `Quick test_synthesis_tau_definition;
        ] );
      ( "formats",
        [
          Alcotest.test_case "3q unitary qasm" `Quick test_qasm_three_qubit_unitary;
          Alcotest.test_case "big suite" `Quick test_big_suite_instantiates;
        ] );
    ]
