(* Quickstart: compile a small reversible circuit to the SU(4) ISA and
   synthesize the executable pulse program for an XY-coupled device.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* a 3-qubit program: Toffoli sandwiched by CNOTs *)
  let circuit =
    Circuit.create 3
      [
        Gate.h 0;
        Gate.cx 0 1;
        Gate.ccx 0 1 2;
        Gate.cx 1 2;
        Gate.ccx 0 1 2;
      ]
  in
  let rng = Numerics.Rng.create 2026L in
  Printf.printf "== input ==\n%s\n" (Circuit.to_string circuit);

  (* CNOT-based reference (what a conventional compiler would execute) *)
  let cnot_input = Decomp.lower_to_cx circuit in
  let base = Reqisc.metrics Compiler.Metrics.Cnot_isa cnot_input in
  Printf.printf "CNOT ISA:  %s\n" (Format.asprintf "%a" Compiler.Metrics.pp_report base);

  (* ReQISC compilation to the {Can, U3} ISA — the facade is
     result-first, so failures arrive as typed errors. The pipeline is a
     plan of named passes; [Plan.default Eff] is what [~mode:Eff] runs,
     and custom plans come from [Reqisc.Plan.of_names]. *)
  let plan = Reqisc.Plan.default Reqisc.Eff in
  Printf.printf "plan %s: %s\n\n" (Reqisc.Plan.name plan)
    (String.concat " -> " (Reqisc.Plan.pass_names plan));
  let out =
    match Reqisc.compile ~plan rng circuit with
    | Ok out -> out
    | Error e ->
      Printf.eprintf "compilation failed: %s\n" (Robust.Err.to_string e);
      exit (Robust.Err.exit_code e)
  in
  let isa = Compiler.Metrics.Su4_isa Reqisc.xy_coupling in
  let opt = Reqisc.metrics isa out.Reqisc.circuit in
  Printf.printf "ReQISC:    %s  (mirrored %d, distinct 3Q classes %d)\n"
    (Format.asprintf "%a" Compiler.Metrics.pp_report opt)
    out.Reqisc.mirrored out.Reqisc.template_classes;
  Printf.printf "reduction: #2Q %.0f%%  duration %.0f%%\n\n"
    (Compiler.Metrics.reduction
       ~base:(float_of_int base.Compiler.Metrics.count_2q)
       ~opt:(float_of_int opt.Compiler.Metrics.count_2q))
    (Compiler.Metrics.reduction ~base:base.Compiler.Metrics.duration
       ~opt:opt.Compiler.Metrics.duration);

  (* pulse synthesis: Algorithm 1 per SU(4) gate *)
  match Reqisc.pulses Reqisc.xy_coupling out.Reqisc.circuit with
  | Error e -> Printf.printf "pulse synthesis failed: %s\n" (Robust.Err.to_string e)
  | Ok instrs ->
    Printf.printf "== pulse program (XY coupling, g = 1) ==\n";
    Printf.printf "%-8s %-5s %10s %10s %10s %10s\n" "qubits" "mode" "tau" "A1" "A2" "delta";
    List.iter
      (fun (i : Reqisc.pulse_instruction) ->
        let p = i.pulse in
        let a1 = -2.0 *. p.Microarch.Genashn.drive_x1 in
        let a2 = -2.0 *. p.Microarch.Genashn.drive_x2 in
        Printf.printf "(%d,%d)    %-5s %10.4f %10.4f %10.4f %10.4f\n" (fst i.qubits)
          (snd i.qubits)
          (Microarch.Tau.subscheme_to_string p.Microarch.Genashn.subscheme)
          p.Microarch.Genashn.tau a1 a2 p.Microarch.Genashn.delta)
      instrs;
    Printf.printf "\ntotal pulse time: %.4f /g (vs %.4f /g on the CNOT ISA)\n"
      opt.Compiler.Metrics.duration base.Compiler.Metrics.duration
