(* QAOA under depolarizing noise: the shorter SU(4) pulse schedule directly
   buys program fidelity (the Fig. 15 experiment in miniature).

   Run with:  dune exec examples/qaoa_fidelity.exe *)

open Numerics

let () =
  let n = 8 in
  let program = Benchmarks.Generators.qaoa ~seed:11 n ~layers:2 in
  let rng = Rng.create 5L in

  (* baseline: TKet-style CNOT compilation *)
  let cnot = Compiler.Baselines.tket_like_pauli program in
  (* ReQISC: phoenix front end + fusion + mirroring *)
  let out =
    match Reqisc.compile_pauli ~mode:Reqisc.Eff rng program with
    | Ok out -> out
    | Error e ->
      Printf.eprintf "compilation failed: %s\n" (Robust.Err.to_string e);
      exit (Robust.Err.exit_code e)
  in

  let cnot_isa = Compiler.Metrics.Cnot_isa in
  let su4_isa = Compiler.Metrics.Su4_isa Reqisc.xy_coupling in
  let rb = Compiler.Metrics.report cnot_isa cnot in
  let rq = Compiler.Metrics.report su4_isa out.Reqisc.circuit in
  Printf.printf "baseline (CNOT): #2Q=%d  T=%.1f/g\n" rb.Compiler.Metrics.count_2q
    rb.Compiler.Metrics.duration;
  Printf.printf "ReQISC   (SU4) : #2Q=%d  T=%.1f/g\n" rq.Compiler.Metrics.count_2q
    rq.Compiler.Metrics.duration;

  (* noise model: p = p0 * tau / tau_cnot, the Section 6.7 setup *)
  let p0 = 0.004 in
  let tau0 = Microarch.Duration.conventional_cnot_tau ~g:1.0 in
  let model isa =
    Noise.Depolarizing.duration_scaled ~p0 ~tau0 ~tau:(Compiler.Metrics.gate_tau isa)
  in
  let trajectories = 300 in
  let f_base =
    Noise.Depolarizing.program_fidelity (Rng.create 1L) (model cnot_isa) ~trajectories cnot
  in
  let f_req =
    Noise.Depolarizing.program_fidelity (Rng.create 1L) (model su4_isa) ~trajectories
      out.Reqisc.circuit
  in
  Printf.printf "\nnoisy simulation (%d trajectories, p0 = %.3f per CNOT-time):\n"
    trajectories p0;
  Printf.printf "baseline fidelity: %.4f   (error %.4f)\n" f_base (1.0 -. f_base);
  Printf.printf "ReQISC   fidelity: %.4f   (error %.4f)\n" f_req (1.0 -. f_req);
  Printf.printf "error reduction: %.2fx   speedup: %.2fx\n"
    ((1.0 -. f_base) /. Float.max 1e-9 (1.0 -. f_req))
    (rb.Compiler.Metrics.duration /. rq.Compiler.Metrics.duration)
