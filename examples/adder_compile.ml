(* Compile the Cuccaro ripple-carry adder end to end — logical optimization
   plus mirroring-SABRE mapping onto a 1D chain — and check that the routed
   circuit still adds correctly.

   Run with:  dune exec examples/adder_compile.exe *)

open Numerics

let k = 3 (* bits per register *)

(* unwrap the facade's typed errors, exiting with their CLI code *)
let ok = function
  | Ok v -> v
  | Error e ->
    Printf.eprintf "error: %s\n" (Robust.Err.to_string e);
    exit (Robust.Err.exit_code e)

let () =
  let adder = Benchmarks.Generators.ripple_add k in
  let n = adder.Circuit.n in
  let rng = Rng.create 7L in
  Printf.printf "Cuccaro adder: %d qubits, %d gates\n" n (Circuit.gate_count adder);

  let cnot_input = Decomp.lower_to_cx adder in
  let base = Compiler.Metrics.report Compiler.Metrics.Cnot_isa cnot_input in
  let qiskit = Compiler.Baselines.qiskit_like cnot_input in
  let base_q = Compiler.Metrics.report Compiler.Metrics.Cnot_isa qiskit in

  let isa = Compiler.Metrics.Su4_isa Reqisc.xy_coupling in
  let eff = ok (Reqisc.compile ~mode:Reqisc.Eff rng adder) in
  let full = ok (Reqisc.compile ~mode:Reqisc.Full rng adder) in
  let pp tag r = Printf.printf "%-14s %s\n" tag (Format.asprintf "%a" Compiler.Metrics.pp_report r) in
  pp "input (CNOT)" base;
  pp "Qiskit-like" base_q;
  pp "ReQISC-Eff" (Compiler.Metrics.report isa eff.Reqisc.circuit);
  pp "ReQISC-Full" (Compiler.Metrics.report isa full.Reqisc.circuit);

  (* map onto a 1D chain with mirroring-SABRE *)
  let topo = Compiler.Routing.chain n in
  let routed = ok (Reqisc.route ~mirror:true rng topo eff.Reqisc.circuit) in
  Printf.printf "routed on chain: #SU4 %d (+%d swaps inserted, %d absorbed)\n"
    (Circuit.count_2q routed.Compiler.Routing.circuit)
    routed.Compiler.Routing.swaps_inserted routed.Compiler.Routing.swaps_absorbed;

  (* functional check through the full stack: logical result of 5 + 3 *)
  let a_in = 5 and b_in = 3 in
  let bpos i = 1 + (2 * i) and apos i = 2 + (2 * i) in
  let logical_bits = Array.make n 0 in
  for i = 0 to k - 1 do
    logical_bits.(bpos i) <- (b_in lsr i) land 1;
    logical_bits.(apos i) <- (a_in lsr i) land 1
  done;
  (* place logical bits on physical wires per the routing initial mapping
     (the compile-stage mirroring mapping applies after the circuit) *)
  let init_map = routed.Compiler.Routing.initial_mapping in
  let phys_index =
    Array.to_list logical_bits
    |> List.mapi (fun l bit -> (init_map.(l), bit))
    |> List.fold_left (fun acc (w, bit) -> acc lor (bit lsl (n - 1 - w))) 0
  in
  let st = Array.make (1 lsl n) Cx.zero in
  st.(phys_index) <- Cx.one;
  let out_state = State.run_from ~n routed.Compiler.Routing.circuit.Circuit.gates st in
  let winner = ref 0 in
  Array.iteri (fun i v -> if Cx.norm v > 0.9 then winner := i) out_state;
  (* read back: physical wire -> logical wire via routing final mapping and
     compile-stage mirroring mapping *)
  let read logical_wire =
    let l' = eff.Reqisc.final_mapping.(logical_wire) in
    let w = routed.Compiler.Routing.final_mapping.(l') in
    (!winner lsr (n - 1 - w)) land 1
  in
  let sum = ref 0 in
  for i = 0 to k - 1 do
    sum := !sum lor (read (bpos i) lsl i)
  done;
  sum := !sum lor (read (n - 1) lsl k);
  Printf.printf "functional check: %d + %d = %d  [%s]\n" a_in b_in !sum
    (if !sum = a_in + b_in then "OK" else "WRONG")
