(* Export a compiled program in every supported exchange format: RevLib
   .real (input form), REQASM (compiled SU(4) circuit) and the timed pulse
   schedule — the hand-off artifacts between compiler and control stack.

   Run with:  dune exec examples/export_formats.exe *)

let () =
  let dir = Filename.get_temp_dir_name () in
  let adder = Benchmarks.Generators.ripple_add 2 in

  (* the reversible-network input, as a RevLib .real file *)
  let real_path = Filename.concat dir "ripple_add_2.real" in
  Benchmarks.Real_format.save real_path adder;
  Printf.printf "wrote %s\n" real_path;

  (* it parses back identically *)
  let reparsed = Benchmarks.Real_format.load real_path in
  Printf.printf "  reparsed: %d qubits, %d gates\n" reparsed.Circuit.n
    (Circuit.gate_count reparsed);

  (* compile and export the SU(4) circuit as REQASM *)
  let rng = Numerics.Rng.create 1L in
  let out =
    match Reqisc.compile ~mode:Reqisc.Eff rng reparsed with
    | Ok out -> out
    | Error e ->
      Printf.eprintf "compilation failed: %s\n" (Robust.Err.to_string e);
      exit (Robust.Err.exit_code e)
  in
  let qasm_path = Filename.concat dir "ripple_add_2.reqasm" in
  Qasm.save qasm_path out.Reqisc.circuit;
  Printf.printf "wrote %s (%d su4 gates)\n" qasm_path
    (Circuit.count_2q out.Reqisc.circuit);
  let roundtrip = Qasm.load qasm_path in
  Printf.printf "  reqasm roundtrip: %d gates, width %d\n"
    (Circuit.gate_count roundtrip) roundtrip.Circuit.n;

  (* pulse schedule for an XY-coupled device *)
  match Microarch.Schedule.schedule Reqisc.xy_coupling out.Reqisc.circuit with
  | Error e -> Printf.printf "scheduling failed: %s\n" e
  | Ok s ->
    let sched_path = Filename.concat dir "ripple_add_2.pulses" in
    let oc = open_out sched_path in
    output_string oc (Microarch.Schedule.to_string s);
    close_out oc;
    Printf.printf "wrote %s\n\n" sched_path;
    print_string (Microarch.Schedule.to_string s)
