# Artifact-style automation (the paper's artifact drives everything through
# make; these targets map onto the dune equivalents).

RESULTS ?= results

.PHONY: all build test check bench-smoke bench-passes bench-isa bench-obs bench-net bench-cluster bench-chaos demo bench microbench tables figures csv clean

all: build

build:
	dune build

test:
	dune runtest

# fast health check: full test suite plus a tiny benchmark pass that
# exercises the SoA-vs-boxed cross-checks and the table2 fan-out
check: build test bench-smoke

bench-smoke: build
	dune exec bench/microbench.exe -- --smoke --out _build/bench_smoke.json
	dune exec bench/main.exe -- table2 --limit 4
	dune exec bench/main.exe -- compile --limit 3
	dune exec bench/main.exe -- serve --limit 3
	dune exec bench/main.exe -- obs --limit 2

# nanopass pipeline bench alone: per-pass wall time / #2Q / depth over
# the eff+full plans, gated on per-pass Chrome-trace spans; writes
# BENCH_passes.json and BENCH_passes_trace.json
bench-passes: build
	dune exec bench/main.exe -- compile

# cross-ISA matrix bench: a suite prefix compiled to every target ISA
# (per-target 2Q count / depth / synthesized duration / wall time),
# gated on the reconfigurable ISA beating every fixed target on 2Q
# count; writes BENCH_isa.json
bench-isa: build
	dune exec bench/main.exe -- isa

# observability bench alone: tracing overhead contract + per-stage
# latencies; writes BENCH_obs.json and BENCH_obs_trace.json
bench-obs: build
	dune exec bench/main.exe -- obs

# socket transport load bench: 8 pipelined clients over a unix socket
# (JSON-lines and binary-frame passes) vs direct in-process execution of
# the same warm-cache stream, plus the duplicate-storm coalescing check;
# writes BENCH_serve_net.json (gates: meets_1x, p99_halved, single_run)
bench-net: build
	dune exec bench/main.exe -- serve-net

# sharded cluster bench: fingerprint-routed router over paced shards,
# 1-shard vs 3-shard warm throughput, cache hit-rate parity, and
# mid-run shard kill with failover; writes BENCH_cluster.json
# (gates: ratio_ge_2x, hit_rate_no_worse, failover_available)
bench-cluster: build
	dune exec bench/main.exe -- serve-cluster

# chaos harness: replays the serve-net workload with seeded transport /
# worker / store faults armed and gates on availability (every request
# answered), >=3 worker crashes survived, deadline + shed + breaker
# enforcement, and bit-identical cache replay after a mid-write kill;
# writes BENCH_chaos.json. Never part of `bench` (it arms process-global
# fault state), always run explicitly.
bench-chaos: build
	dune exec bench/main.exe -- chaos

# full microbenchmark run; writes BENCH_numerics.json at the repo root
microbench: build
	dune exec bench/microbench.exe

# minutes: one category end to end (the artifact's `make demo`)
demo: build
	dune exec bin/reqisc_cli.exe -- compile alu_2 --mode full --route chain --pulses

# hours-equivalent full regeneration (the artifact's `make results`)
bench: build
	dune exec bench/main.exe -- all

tables: build
	dune exec bench/main.exe -- table1 table2 table3

figures: build
	dune exec bench/main.exe -- fig4 fig5 fig6 fig12 fig13 fig14 fig15 fig16

csv: build
	dune exec bench/main.exe -- all --csv-dir $(RESULTS)

clean:
	dune clean
	rm -rf $(RESULTS)
